// Tests for hierarchical fracturing: one fracture per unique cell,
// instantiation by translation, equivalence with the flat flow.
#include <gtest/gtest.h>

#include <algorithm>

#include "fracture/verifier.h"
#include "mdp/hierarchy.h"

namespace mbf {
namespace {

GdsPolygon lPoly() {
  GdsPolygon p;
  p.polygon =
      Polygon({{0, 0}, {80, 0}, {80, 30}, {30, 30}, {30, 80}, {0, 80}});
  return p;
}

GdsLibrary arrayLib(int instances) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}};
  GdsStructure top{"TOP", {}, {}};
  for (int i = 0; i < instances; ++i) {
    top.srefs.push_back({"CELL", {i * 200, 0}});
  }
  lib.structures = {top, cell};
  return lib;
}

TEST(HierarchyTest, OneFracturePerUniqueCell) {
  const GdsLibrary lib = arrayLib(5);
  const HierarchicalResult r = fractureGdsHierarchical(lib, BatchConfig{});
  // CELL fractured once; TOP has no own polygons.
  EXPECT_EQ(r.uniqueShapesFractured, 1);
  EXPECT_EQ(r.instantiatedShapes, 5);
  // Every instance carries the same number of shots.
  EXPECT_EQ(r.flatShotCount() % 5, 0);
  EXPECT_GE(r.flatShotCount(), 5 * 2);  // an L needs >= 2 shots
}

TEST(HierarchyTest, InstanceShotsMatchFlatFracture) {
  const GdsLibrary lib = arrayLib(3);
  const HierarchicalResult r = fractureGdsHierarchical(lib, BatchConfig{});

  // Reference: fracture the cell directly.
  LayoutShape shape;
  shape.rings.push_back(lPoly().polygon);
  const Solution direct = fractureShape(shape, FractureParams{}, Method::kOurs);

  ASSERT_EQ(r.flatShotCount(), 3 * direct.shotCount());
  // First instance is at offset 0: its shots equal the direct solution's.
  std::vector<Rect> first(r.shots.begin(),
                          r.shots.begin() + direct.shotCount());
  auto key = [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) <
           std::tie(b.x0, b.y0, b.x1, b.y1);
  };
  std::vector<Rect> expect = direct.shots;
  std::sort(first.begin(), first.end(), key);
  std::sort(expect.begin(), expect.end(), key);
  EXPECT_EQ(first, expect);
}

TEST(HierarchyTest, TranslatedInstanceIsFeasible) {
  const GdsLibrary lib = arrayLib(2);
  const HierarchicalResult r = fractureGdsHierarchical(lib, BatchConfig{});
  // Verify the second instance's shots against a translated problem.
  Polygon shifted = lPoly().polygon;
  shifted.translate({200, 0});
  Problem problem(shifted, FractureParams{});
  const int perInstance = r.flatShotCount() / 2;
  const std::vector<Rect> second(r.shots.end() - perInstance, r.shots.end());
  const Violations v = evaluateShots(problem, second);
  EXPECT_EQ(v.total(), 0);
}

TEST(HierarchyTest, MixedOwnPolygonsAndRefs) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}};
  GdsPolygon own;
  own.polygon = Polygon({{500, 0}, {560, 0}, {560, 60}, {500, 60}});
  GdsStructure top{"TOP", {own}, {{"CELL", {0, 300}}}};
  lib.structures = {top, cell};
  const HierarchicalResult r = fractureGdsHierarchical(lib, BatchConfig{});
  EXPECT_EQ(r.uniqueShapesFractured, 2);  // TOP's square + CELL's L
  EXPECT_EQ(r.instantiatedShapes, 2);
  // Shot for the square at its own coordinates, L shots shifted by 300.
  bool sawSquare = false;
  bool sawShifted = false;
  for (const Rect& s : r.shots) {
    if (s.intersects({500, 0, 560, 60})) sawSquare = true;
    if (s.y0 >= 290) sawShifted = true;
  }
  EXPECT_TRUE(sawSquare);
  EXPECT_TRUE(sawShifted);
}

TEST(HierarchyTest, EmptyLibrary) {
  const HierarchicalResult r =
      fractureGdsHierarchical(GdsLibrary{}, BatchConfig{});
  EXPECT_EQ(r.flatShotCount(), 0);
  EXPECT_EQ(r.uniqueShapesFractured, 0);
}

}  // namespace
}  // namespace mbf
