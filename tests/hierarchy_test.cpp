// Hierarchical production path (DESIGN.md section 17): one fracture per
// unique REACHABLE cell, instantiation by translation, top-structure
// auto-detection, cycle/depth/overflow diagnostics, and the persistent
// content-addressed cell-fracture cache (warm-run bitwise identity,
// key invalidation, tamper rejection).
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fracture/verifier.h"
#include "io/atomic_file.h"
#include "mdp/cell_cache.h"
#include "mdp/hierarchy.h"

namespace mbf {
namespace {

GdsPolygon lPoly() {
  GdsPolygon p;
  p.polygon =
      Polygon({{0, 0}, {80, 0}, {80, 30}, {30, 30}, {30, 80}, {0, 80}});
  return p;
}

GdsLibrary arrayLib(int instances) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}, {}};
  GdsStructure top{"TOP", {}, {}, {}};
  for (int i = 0; i < instances; ++i) {
    top.srefs.push_back({"CELL", {i * 200, 0}});
  }
  lib.structures = {top, cell};
  return lib;
}

HierarchicalResult mustFracture(const GdsLibrary& lib,
                                const BatchConfig& config = {},
                                const HierOptions& options = {}) {
  HierarchicalResult r;
  const Status st = fractureGdsHierarchical(lib, config, options, r);
  EXPECT_TRUE(st.ok()) << st.str();
  return r;
}

TEST(HierarchyTest, OneFracturePerUniqueCell) {
  const HierarchicalResult r = mustFracture(arrayLib(5));
  // CELL fractured once; TOP has no own polygons but is reachable.
  EXPECT_EQ(r.uniqueShapesFractured, 1);
  EXPECT_EQ(r.uniqueCellsFractured, 1);
  EXPECT_EQ(r.instantiatedShapes(), 5);
  EXPECT_EQ(r.reachableCells, 2);
  EXPECT_EQ(r.instancesExpanded, 6);  // TOP + 5 CELL placements
  // Every instance carries the same number of shots.
  EXPECT_EQ(r.flatShotCount() % 5, 0);
  EXPECT_GE(r.flatShotCount(), 5 * 2);  // an L needs >= 2 shots
}

TEST(HierarchyTest, InstanceShotsMatchFlatFracture) {
  const HierarchicalResult r = mustFracture(arrayLib(3));
  ASSERT_EQ(r.batch.solutions.size(), 3u);

  // Reference: fracture the cell directly.
  LayoutShape shape;
  shape.rings.push_back(lPoly().polygon);
  const Solution direct = fractureShape(shape, FractureParams{}, Method::kOurs);

  ASSERT_EQ(r.flatShotCount(), 3 * direct.shotCount());
  // First instance is at offset 0: its shots equal the direct solution's.
  auto key = [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) <
           std::tie(b.x0, b.y0, b.x1, b.y1);
  };
  std::vector<Rect> first = r.batch.solutions[0].shots;
  std::vector<Rect> expect = direct.shots;
  std::sort(first.begin(), first.end(), key);
  std::sort(expect.begin(), expect.end(), key);
  EXPECT_EQ(first, expect);
}

TEST(HierarchyTest, TranslatedInstanceIsFeasible) {
  const HierarchicalResult r = mustFracture(arrayLib(2));
  ASSERT_EQ(r.batch.solutions.size(), 2u);
  // Verify the second instance's shots against a translated problem.
  Polygon shifted = lPoly().polygon;
  shifted.translate({200, 0});
  Problem problem(shifted, FractureParams{});
  const Violations v = evaluateShots(problem, r.batch.solutions[1].shots);
  EXPECT_EQ(v.total(), 0);
}

TEST(HierarchyTest, MixedOwnPolygonsAndRefs) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}, {}};
  GdsPolygon own;
  own.polygon = Polygon({{500, 0}, {560, 0}, {560, 60}, {500, 60}});
  GdsStructure top{"TOP", {own}, {{"CELL", {0, 300}}}, {}};
  lib.structures = {top, cell};
  const HierarchicalResult r = mustFracture(lib);
  EXPECT_EQ(r.uniqueShapesFractured, 2);  // TOP's square + CELL's L
  EXPECT_EQ(r.instantiatedShapes(), 2);
  // Shot for the square at its own coordinates, L shots shifted by 300.
  bool sawSquare = false;
  bool sawShifted = false;
  for (const Solution& sol : r.batch.solutions) {
    for (const Rect& s : sol.shots) {
      if (s.intersects({500, 0, 560, 60})) sawSquare = true;
      if (s.y0 >= 290) sawShifted = true;
    }
  }
  EXPECT_TRUE(sawSquare);
  EXPECT_TRUE(sawShifted);
}

TEST(HierarchyTest, EmptyLibraryIsAnError) {
  HierarchicalResult r;
  const Status st =
      fractureGdsHierarchical(GdsLibrary{}, BatchConfig{}, HierOptions{}, r);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// Regression (top-structure detection): real GDS files usually list the
// top cell LAST; the resolved top must be the unreferenced structure,
// not structures.front().
TEST(HierarchyTest, TopAutoDetectedWhenListedLast) {
  GdsLibrary lib = arrayLib(4);
  std::swap(lib.structures[0], lib.structures[1]);  // CELL first, TOP last
  const HierarchicalResult r = mustFracture(lib);
  EXPECT_EQ(r.topStruct, "TOP");
  EXPECT_EQ(r.instantiatedShapes(), 4);
}

TEST(HierarchyTest, MultipleRootsNeedExplicitTop) {
  GdsLibrary lib = arrayLib(2);
  GdsStructure orphan{"ORPHAN", {lPoly()}, {}, {}};
  lib.structures.push_back(orphan);
  HierarchicalResult r;
  const Status st =
      fractureGdsHierarchical(lib, BatchConfig{}, HierOptions{}, r);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("TOP"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("ORPHAN"), std::string::npos) << st.message();
}

// Regression (unreachable cells): a cell no reference chain from the
// top reaches must not be fractured or counted — the old demo path
// fractured every library structure.
TEST(HierarchyTest, UnreachableCellNotFracturedOrCounted) {
  GdsLibrary lib = arrayLib(3);
  GdsPolygon big;
  big.polygon = Polygon({{0, 0}, {900, 0}, {900, 900}, {0, 900}});
  GdsStructure orphan{"ORPHAN", {big, big, big}, {}, {}};
  lib.structures.push_back(orphan);
  HierOptions options;
  options.topStruct = "TOP";
  const HierarchicalResult r = mustFracture(lib, BatchConfig{}, options);
  EXPECT_EQ(r.uniqueShapesFractured, 1);  // CELL only, never ORPHAN
  EXPECT_EQ(r.reachableCells, 2);
  EXPECT_EQ(r.instantiatedShapes(), 3);
}

// Regression (silent truncation): depth 8+ used to silently drop
// geometry; a 12-deep chain must now flatten completely...
TEST(HierarchyTest, DeepChainIsComplete) {
  GdsLibrary lib;
  const int depth = 12;
  for (int i = 0; i < depth; ++i) {
    GdsStructure s;
    s.name = "LEVEL" + std::to_string(i);
    if (i + 1 < depth) {
      s.srefs.push_back({"LEVEL" + std::to_string(i + 1), {10, 0}});
    } else {
      s.polygons.push_back(lPoly());
    }
    lib.structures.push_back(std::move(s));
  }
  std::vector<LayoutShape> shapes;
  const Status st = hierarchicalInstanceShapes(lib, "", shapes);
  ASSERT_TRUE(st.ok()) << st.str();
  ASSERT_EQ(shapes.size(), 1u);
  // The leaf's L, translated by 11 hops of 10 nm.
  EXPECT_EQ(shapes[0].rings.front().bbox(),
            Rect(110, 0, 110 + 80, 80));
}

// ... while a chain past kGdsMaxDepth is a named error, not truncation.
TEST(HierarchyTest, OverDeepChainIsAnError) {
  GdsLibrary lib;
  const int depth = kGdsMaxDepth + 2;
  for (int i = 0; i < depth; ++i) {
    GdsStructure s;
    s.name = "LEVEL" + std::to_string(i);
    if (i + 1 < depth) {
      s.srefs.push_back({"LEVEL" + std::to_string(i + 1), {10, 0}});
    } else {
      s.polygons.push_back(lPoly());
    }
    lib.structures.push_back(std::move(s));
  }
  std::vector<LayoutShape> shapes;
  const Status st = hierarchicalInstanceShapes(lib, "", shapes);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("deeper than"), std::string::npos)
      << st.message();
}

TEST(HierarchyTest, CycleIsAnErrorNamingTheChain) {
  GdsLibrary lib;
  GdsStructure a{"A", {lPoly()}, {{"B", {10, 0}}}, {}};
  GdsStructure b{"B", {lPoly()}, {{"A", {10, 0}}}, {}};
  lib.structures = {a, b};
  HierarchicalResult r;
  HierOptions options;
  options.topStruct = "A";
  const Status st = fractureGdsHierarchical(lib, BatchConfig{}, options, r);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cycle"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("A -> B -> A"), std::string::npos)
      << st.message();
}

// Regression (int32 overflow): c * columnPitch overflows 32-bit long
// before the final placement does; the expansion must compute in int64.
TEST(HierarchyTest, ArefPlacementUsesInt64Arithmetic) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}, {}};
  GdsAref aref;
  aref.structName = "CELL";
  aref.origin = {-2000000000, 0};
  aref.columns = 3;
  aref.rows = 1;
  aref.columnPitch = {1200000000, 0};  // c=2 -> 2.4e9, wraps in int32
  GdsStructure top{"TOP", {}, {}, {aref}};
  lib.structures = {top, cell};
  std::vector<LayoutShape> shapes;
  const Status st = hierarchicalInstanceShapes(lib, "", shapes);
  ASSERT_TRUE(st.ok()) << st.str();
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0].rings.front().bbox().x0, -2000000000);
  EXPECT_EQ(shapes[1].rings.front().bbox().x0, -800000000);
  EXPECT_EQ(shapes[2].rings.front().bbox().x0, 400000000);
}

TEST(HierarchyTest, OutOfRangePlacementIsRejected) {
  GdsLibrary lib;
  GdsStructure cell{"CELL", {lPoly()}, {}, {}};
  GdsStructure top{"TOP", {}, {{"CELL", {2147483600, 0}}}, {}};
  lib.structures = {top, cell};
  std::vector<LayoutShape> shapes;
  const Status st = hierarchicalInstanceShapes(lib, "", shapes);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("32-bit"), std::string::npos) << st.message();
}

// --------------------------------------------------------------------
// Persistent cell-fracture cache
// --------------------------------------------------------------------

std::vector<LayoutShape> cellShapes() {
  LayoutShape shape;
  shape.rings.push_back(lPoly().polygon);
  return {shape};
}

TEST(CellCacheTest, KeyInvalidatesOnEveryResultRelevantField) {
  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig base;
  const std::string baseKey = cellFractureKey(shapes, base);
  ASSERT_EQ(baseKey.size(), 64u);

  std::vector<std::pair<std::string, BatchConfig>> variants;
  auto add = [&](const std::string& name, auto&& mutate) {
    BatchConfig c = base;
    mutate(c);
    variants.emplace_back(name, std::move(c));
  };
  add("gamma", [](BatchConfig& c) { c.params.gamma = 3.0; });
  add("sigma", [](BatchConfig& c) { c.params.sigma = 7.0; });
  add("rho", [](BatchConfig& c) { c.params.rho = 0.4; });
  add("lmin", [](BatchConfig& c) { c.params.lmin = 14; });
  add("eta", [](BatchConfig& c) { c.params.backscatterEta = 0.1; });
  add("sigma_back", [](BatchConfig& c) { c.params.backscatterSigma = 30.0; });
  add("lth", [](BatchConfig& c) { c.params.lth = 25.0; });
  add("overlap", [](BatchConfig& c) { c.params.overlapFraction = 0.7; });
  add("nmax", [](BatchConfig& c) { c.params.nmax = 99; });
  add("nh", [](BatchConfig& c) { c.params.nh = 5; });
  add("stagnation", [](BatchConfig& c) { c.params.stagnationEps = 1e-5; });
  add("blocking", [](BatchConfig& c) { c.params.blockingSigmas = 1.5; });
  add("merge_inside",
      [](BatchConfig& c) { c.params.mergeInsideFraction = 0.8; });
  add("bias", [](BatchConfig& c) { c.params.enableBias = false; });
  add("add_remove", [](BatchConfig& c) { c.params.enableAddRemove = false; });
  add("merge", [](BatchConfig& c) { c.params.enableMerge = false; });
  add("budget_ms", [](BatchConfig& c) { c.params.shapeTimeBudgetMs = 5.0; });
  add("grid_bytes", [](BatchConfig& c) { c.params.maxGridBytes = 1 << 20; });
  add("method", [](BatchConfig& c) { c.method = Method::kGsc; });
  add("strict", [](BatchConfig& c) { c.allowDegradation = false; });
  add("fallback_only", [](BatchConfig& c) { c.fallbackOnly = true; });

  for (const auto& [name, config] : variants) {
    EXPECT_NE(cellFractureKey(shapes, config), baseKey)
        << "field '" << name << "' did not invalidate the key";
  }

  // Thread counts are byte-identity knobs, not result knobs: same key.
  BatchConfig threaded = base;
  threaded.threads = 8;
  threaded.params.numThreads = 8;
  EXPECT_EQ(cellFractureKey(shapes, threaded), baseKey);
  // shapeIndexBase is reporting plumbing, not a result knob.
  BatchConfig based = base;
  based.shapeIndexBase = 17;
  EXPECT_EQ(cellFractureKey(shapes, based), baseKey);

  // Geometry participates.
  std::vector<LayoutShape> moved = shapes;
  moved[0].rings[0].translate({1, 0});
  EXPECT_NE(cellFractureKey(moved, base), baseKey);
}

struct TempCacheDir {
  std::string path;
  explicit TempCacheDir(const std::string& name)
      : path("cell_cache_tmp_" + name) {
    std::system(("rm -rf '" + path + "'").c_str());
  }
  ~TempCacheDir() { std::system(("rm -rf '" + path + "'").c_str()); }
};

TEST(CellCacheTest, StoreLoadRoundTripIsBitExact) {
  TempCacheDir dir("roundtrip");
  CellFractureCache cache(dir.path + "/nested/deeper");
  ASSERT_TRUE(cache.prepare().ok());

  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig config;
  const BatchResult batch = fractureLayout(shapes, config);
  CellFracture cell;
  cell.solutions = batch.solutions;
  cell.reports = batch.reports;

  const std::string key = cellFractureKey(shapes, config);
  ASSERT_TRUE(cache.store(key, cell).ok());

  CellFracture back;
  ASSERT_EQ(cache.load(key, back), CellFractureCache::Lookup::kHit);
  // Bitwise equality of everything except runtimeSeconds, the one
  // wall-clock field: the cache stores it canonicalized to zero so
  // entry bytes are a pure function of the key (concurrent writers
  // publish bit-identical payloads).
  std::vector<Solution> expected = cell.solutions;
  for (Solution& s : expected) s.runtimeSeconds = 0.0;
  EXPECT_EQ(back.solutions, expected);
  ASSERT_EQ(back.reports.size(), cell.reports.size());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().stored, 1);

  CellFracture missOut;
  EXPECT_EQ(cache.load(std::string(64, 'a'), missOut),
            CellFractureCache::Lookup::kMiss);
}

TEST(CellCacheTest, TamperedEntryIsRejectedNeverReused) {
  TempCacheDir dir("tamper");
  CellFractureCache cache(dir.path);
  ASSERT_TRUE(cache.prepare().ok());

  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig config;
  const BatchResult batch = fractureLayout(shapes, config);
  CellFracture cell{batch.solutions, batch.reports};
  const std::string key = cellFractureKey(shapes, config);
  ASSERT_TRUE(cache.store(key, cell).ok());
  const std::string path = cache.pathFor(key);

  // Flip one byte deep in the payload (past the header).
  std::string bytes;
  ASSERT_TRUE(readFileToString(path, bytes).ok());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  CellFracture out;
  EXPECT_EQ(cache.load(key, out), CellFractureCache::Lookup::kRejected);

  // A matching sidecar does not save a lying header: rewrite the entry
  // under the WRONG key with a fresh (valid) sidecar.
  CellFractureCache other(dir.path);
  const std::string wrongKey = std::string(64, 'b');
  ASSERT_TRUE(other.store(wrongKey, cell).ok());
  CellFracture aliased;
  EXPECT_EQ(other.load(key, aliased), CellFractureCache::Lookup::kRejected);

  // A missing sidecar is NOT tampering: it is the two-phase publication
  // window (`.cell` renamed, `.sha256` not yet) a concurrent writer is
  // legitimately inside, so the entry reads as an ordinary miss
  // (DESIGN.md section 19). A PRESENT-but-mismatching sidecar still
  // rejects, as above.
  std::remove(sidecarPathFor(other.pathFor(wrongKey)).c_str());
  EXPECT_EQ(other.load(wrongKey, aliased),
            CellFractureCache::Lookup::kMiss);
}

TEST(CellCacheTest, MissingSidecarIsPublicationWindowMiss) {
  TempCacheDir dir("pubwindow");
  CellFractureCache cache(dir.path);
  ASSERT_TRUE(cache.prepare().ok());
  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig config;
  const BatchResult batch = fractureLayout(shapes, config);
  CellFracture cell{batch.solutions, batch.reports};
  const std::string key = cellFractureKey(shapes, config);
  ASSERT_TRUE(cache.store(key, cell).ok());

  // Simulate a concurrent writer caught between its two publication
  // renames: `.cell` landed, `.sha256` not yet.
  ASSERT_EQ(std::remove(sidecarPathFor(cache.pathFor(key)).c_str()), 0);
  CellFracture out;
  EXPECT_EQ(cache.load(key, out), CellFractureCache::Lookup::kMiss)
      << "half-published entry must read as a miss, not an integrity hit";
  EXPECT_EQ(cache.stats().rejected, 0);
  EXPECT_EQ(cache.stats().misses, 1);

  // The caller's response to a miss — re-fracture and store — completes
  // publication and the entry becomes loadable.
  ASSERT_TRUE(cache.store(key, cell).ok());
  EXPECT_EQ(cache.load(key, out), CellFractureCache::Lookup::kHit);
}

TEST(CellCacheTest, StoreOverExistingEntryIsBenignLastWriterWins) {
  TempCacheDir dir("lastwriter");
  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig config;
  const BatchResult batch = fractureLayout(shapes, config);
  CellFracture cell{batch.solutions, batch.reports};
  const std::string key = cellFractureKey(shapes, config);

  // Two cache objects on one directory stand in for two processes that
  // both missed and both fractured the same cell: the key addresses the
  // content, so both renames publish bit-identical bytes and the loser
  // of the race replaces a file with itself.
  CellFractureCache first(dir.path);
  ASSERT_TRUE(first.prepare().ok());
  ASSERT_TRUE(first.store(key, cell).ok());
  std::string bytesAfterFirst;
  ASSERT_TRUE(readFileToString(first.pathFor(key), bytesAfterFirst).ok());

  // The second "process" fractured the same cell at a different wall
  // clock — the one field two independent fractures legitimately differ
  // in. Canonicalization must erase it from the stored bytes.
  CellFracture later = cell;
  for (Solution& s : later.solutions) s.runtimeSeconds += 17.25;
  CellFractureCache second(dir.path);
  ASSERT_TRUE(second.prepare().ok());
  ASSERT_TRUE(second.store(key, later).ok());
  std::string bytesAfterSecond;
  ASSERT_TRUE(readFileToString(second.pathFor(key), bytesAfterSecond).ok());
  EXPECT_EQ(bytesAfterSecond, bytesAfterFirst);

  CellFracture back;
  ASSERT_EQ(first.load(key, back), CellFractureCache::Lookup::kHit);
  std::vector<Solution> expected = cell.solutions;
  for (Solution& s : expected) s.runtimeSeconds = 0.0;
  EXPECT_EQ(back.solutions, expected);
}

TEST(CellCacheTest, QuotaEvictionSkipsKeysNotedByLiveProcess) {
  TempCacheDir dir("quotalive");
  const std::vector<LayoutShape> shapes = cellShapes();
  const BatchConfig config;
  const BatchResult batch = fractureLayout(shapes, config);
  CellFracture cell{batch.solutions, batch.reports};
  const std::string k1(64, '1');
  const std::string k2(64, '2');
  const std::string k3(64, '3');

  // Run A stores k1 and exits (its liveness lock is released).
  std::string k1Path;
  {
    CellFractureCache a(dir.path);
    ASSERT_TRUE(a.prepare().ok());
    ASSERT_TRUE(a.store(k1, cell).ok());
    k1Path = a.pathFor(k1);
  }

  // A concurrent run under a fake pid holds its liveness lock and has
  // noted k1 (it loaded or stored that entry). flock binds to the open
  // file description, so holding it on a private descriptor makes
  // probes from this same process read "live".
  const std::string ghostLock = dir.path + "/.mbf-live.4000001.lck";
  const int ghostFd = ::open(ghostLock.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(ghostFd, 0);
  ASSERT_EQ(::flock(ghostFd, LOCK_EX | LOCK_NB), 0);
  const std::string line = k1 + "\n";
  ASSERT_EQ(::write(ghostFd, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));

  // Run B stores k2 under a 1-byte quota: the sweep wants k1 (oldest,
  // not B's own) but must spare it — the live process may reload it.
  CellFractureCache b(dir.path);
  ASSERT_TRUE(b.prepare().ok());
  b.setQuotaBytes(1);
  ASSERT_TRUE(b.store(k2, cell).ok());
  struct stat st{};
  EXPECT_EQ(::stat(k1Path.c_str(), &st), 0) << "live-noted entry evicted";
  EXPECT_GE(b.stats().evictionsSkippedLive, 1);
  EXPECT_EQ(b.stats().evicted, 0);

  // The ghost process dies (lock released): the next sweep evicts k1.
  ASSERT_EQ(::close(ghostFd), 0);
  ASSERT_TRUE(b.store(k3, cell).ok());
  EXPECT_NE(::stat(k1Path.c_str(), &st), 0)
      << "entry of a dead process must become evictable";
  EXPECT_GE(b.stats().evicted, 1);
}

TEST(CellCacheTest, WarmHierRunIsBitIdenticalWithZeroFractures) {
  TempCacheDir dir("warm");
  GdsLibrary lib = arrayLib(4);
  // A second unique cell so the warm run proves multi-entry reuse.
  GdsPolygon sq;
  sq.polygon = Polygon({{0, 0}, {50, 0}, {50, 50}, {0, 50}});
  lib.structures.push_back(GdsStructure{"SQ", {sq}, {}, {}});
  lib.structures[0].srefs.push_back({"SQ", {-300, 0}});

  BatchConfig config;
  HierOptions options;
  options.topStruct = "TOP";
  options.cellCacheDir = dir.path;

  HierarchicalResult cold;
  ASSERT_TRUE(fractureGdsHierarchical(lib, config, options, cold).ok());
  EXPECT_EQ(cold.cellCacheHits, 0);
  EXPECT_EQ(cold.cellCacheMisses, 2);
  EXPECT_EQ(cold.uniqueCellsFractured, 2);
  EXPECT_EQ(cold.uniqueShapesFractured, 2);

  HierarchicalResult warm;
  ASSERT_TRUE(fractureGdsHierarchical(lib, config, options, warm).ok());
  EXPECT_EQ(warm.cellCacheHits, 2);
  EXPECT_EQ(warm.cellCacheMisses, 0);
  EXPECT_EQ(warm.uniqueCellsFractured, 0);   // zero fractures performed
  EXPECT_EQ(warm.uniqueShapesFractured, 0);
  // Bitwise identity except runtimeSeconds (stored canonicalized to
  // zero — no fracture happened in the warm run, so a replayed runtime
  // would be fiction): warm solutions are replayed bytes, not
  // recomputations.
  std::vector<Solution> coldCanonical = cold.batch.solutions;
  for (Solution& s : coldCanonical) s.runtimeSeconds = 0.0;
  EXPECT_EQ(warm.batch.solutions, coldCanonical);
  EXPECT_EQ(warm.flatShotCount(), cold.flatShotCount());

  // Changing any parameter misses (and re-populates under the new key).
  BatchConfig changed = config;
  changed.params.gamma = 3.0;
  HierarchicalResult invalidated;
  ASSERT_TRUE(
      fractureGdsHierarchical(lib, changed, options, invalidated).ok());
  EXPECT_EQ(invalidated.cellCacheHits, 0);
  EXPECT_EQ(invalidated.uniqueCellsFractured, 2);
}

}  // namespace
}  // namespace mbf
