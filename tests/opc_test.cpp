// Tests for the OPC-style shape generator and method behaviour on
// Manhattan geometry.
#include <gtest/gtest.h>

#include "baselines/greedy_set_cover.h"
#include "benchgen/opc_synth.h"
#include "fracture/model_based_fracturer.h"

namespace mbf {
namespace {

TEST(OpcSynthTest, Deterministic) {
  OpcSynthConfig cfg;
  cfg.seed = 9;
  EXPECT_EQ(makeOpcShape(cfg).vertices(), makeOpcShape(cfg).vertices());
}

TEST(OpcSynthTest, RectilinearAndSized) {
  OpcSynthConfig cfg;
  cfg.seed = 4;
  const Polygon p = makeOpcShape(cfg);
  ASSERT_GE(p.size(), 4u);
  EXPECT_TRUE(p.isRectilinear());
  EXPECT_TRUE(p.isCounterClockwise());
  // Roughly the configured bar plus decoration.
  EXPECT_GE(p.area(), 0.8 * cfg.width * cfg.height);
  EXPECT_LE(p.bbox().width(), cfg.width + 2 * cfg.maxJog);
}

TEST(OpcSynthTest, JogsStayInBand) {
  OpcSynthConfig cfg;
  cfg.seed = 6;
  cfg.maxJog = 2;
  const Polygon p = makeOpcShape(cfg);
  // The bar's top boundary wiggles by at most maxJog around y = height.
  for (const Point& v : p.vertices()) {
    EXPECT_GE(v.y, -cfg.maxJog);
    EXPECT_LE(v.y, cfg.height + cfg.maxJog);
  }
}

TEST(OpcSynthTest, TStubAddsArea) {
  OpcSynthConfig plain;
  plain.seed = 8;
  plain.tShaped = false;
  OpcSynthConfig stubbed = plain;
  stubbed.tShaped = true;
  EXPECT_GT(makeOpcShape(stubbed).area(), makeOpcShape(plain).area() + 200);
}

TEST(OpcSynthTest, SuiteIsValid) {
  const auto suite = opcSuiteConfigs();
  ASSERT_EQ(suite.size(), 10u);
  for (const OpcSynthConfig& cfg : suite) {
    const Polygon p = makeOpcShape(cfg);
    EXPECT_GE(p.size(), 4u) << cfg.name();
    EXPECT_TRUE(p.isRectilinear()) << cfg.name();
  }
}

TEST(OpcSynthTest, PlainBarIsOneShot) {
  // A jog-free OPC bar is a rectangle: one shot, feasible.
  OpcSynthConfig cfg;
  cfg.seed = 3;
  cfg.maxJog = 1;
  cfg.segmentLength = 1000;  // no jogs fit
  const Polygon p = makeOpcShape(cfg);
  Problem problem(p, FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(problem);
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_TRUE(sol.feasible());
}

TEST(OpcSuiteTest, MethodsStayBounded) {
  // Smoke the first two suite clips through two methods: shot counts stay
  // small on Manhattan bars and nothing crashes.
  const auto suite = opcSuiteConfigs();
  for (std::size_t i = 0; i < 2; ++i) {
    Problem problem(makeOpcShape(suite[i]), FractureParams{});
    const Solution ours = ModelBasedFracturer{}.fracture(problem);
    const Solution gsc = GreedySetCover{}.fracture(problem);
    EXPECT_LE(ours.shotCount(), 12) << suite[i].name();
    EXPECT_GE(gsc.shotCount(), 1);
  }
}

}  // namespace
}  // namespace mbf
