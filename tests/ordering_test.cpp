// Tests for shot ordering (mdp/ordering.h) and shot statistics
// (analysis/shot_stats.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "analysis/shot_stats.h"
#include "mdp/ordering.h"

namespace mbf {
namespace {

std::vector<Rect> randomShots(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pos(0, 500);
  std::vector<Rect> shots;
  for (int i = 0; i < n; ++i) {
    const int x = pos(rng);
    const int y = pos(rng);
    shots.push_back({x, y, x + 20, y + 20});
  }
  return shots;
}

TEST(OrderingTest, PermutationIsValid) {
  const std::vector<Rect> shots = randomShots(1, 30);
  const std::vector<std::size_t> order = orderShots(shots);
  ASSERT_EQ(order.size(), shots.size());
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(OrderingTest, ImprovesRandomOrder) {
  const std::vector<Rect> shots = randomShots(2, 40);
  const double before = travelLength(shots);
  const std::vector<std::size_t> order = orderShots(shots);
  const double after = travelLength(shots, order);
  EXPECT_LT(after, before);
}

TEST(OrderingTest, TwoOptNotWorseThanGreedy) {
  const std::vector<Rect> shots = randomShots(3, 35);
  OrderingConfig greedyOnly;
  greedyOnly.twoOpt = false;
  const double greedy = travelLength(shots, orderShots(shots, greedyOnly));
  const double improved = travelLength(shots, orderShots(shots));
  EXPECT_LE(improved, greedy + 1e-9);
}

TEST(OrderingTest, GridTourNearOptimal) {
  // 5x5 grid of shots spaced 100 nm: optimal open tour = 24 hops of
  // 100 nm. Nearest neighbour + 2-opt must be close.
  std::vector<Rect> shots;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      shots.push_back({x * 100, y * 100, x * 100 + 10, y * 100 + 10});
    }
  }
  const double len = travelLength(shots, orderShots(shots));
  EXPECT_LE(len, 1.15 * 2400.0);
}

TEST(OrderingTest, EdgeCases) {
  EXPECT_TRUE(orderShots({}).empty());
  const std::vector<Rect> one{{0, 0, 10, 10}};
  EXPECT_EQ(orderShots(one).size(), 1u);
  EXPECT_DOUBLE_EQ(travelLength(one), 0.0);
}

TEST(OrderingTest, ApplyOrderReorders) {
  const std::vector<Rect> shots{{0, 0, 1, 1}, {10, 0, 11, 1}, {5, 0, 6, 1}};
  const std::vector<std::size_t> order{2, 0, 1};
  const std::vector<Rect> out = applyOrder(shots, order);
  EXPECT_EQ(out[0], shots[2]);
  EXPECT_EQ(out[1], shots[0]);
  EXPECT_EQ(out[2], shots[1]);
}

TEST(ShotStatsTest, BasicCounters) {
  const std::vector<Rect> shots{{0, 0, 100, 15}, {0, 0, 50, 50}};
  const ShotStats s = computeShotStats(shots, /*sliverThreshold=*/20);
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.sliverCount, 1);  // the 15-nm-tall one
  EXPECT_EQ(s.minDimension, 15);
  EXPECT_EQ(s.maxDimension, 100);
  EXPECT_EQ(s.totalShotArea, 100 * 15 + 50 * 50);
}

TEST(ShotStatsTest, OverlapFraction) {
  // Two identical shots: intersection = area, total = 2 * area -> 0.5.
  const std::vector<Rect> shots{{0, 0, 40, 40}, {0, 0, 40, 40}};
  const ShotStats s = computeShotStats(shots);
  EXPECT_DOUBLE_EQ(s.overlapFraction, 0.5);
  // Disjoint: 0.
  const std::vector<Rect> disjoint{{0, 0, 40, 40}, {100, 0, 140, 40}};
  EXPECT_DOUBLE_EQ(computeShotStats(disjoint).overlapFraction, 0.0);
}

TEST(ShotStatsTest, EmptyList) {
  const ShotStats s = computeShotStats({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.totalShotArea, 0);
}

/// The O(n^2) all-pairs overlap sum computeShotStats used before the
/// sort-by-x sweep replaced it — kept as the oracle the sweep must
/// match exactly (int64 sums are order-independent, so "exactly" means
/// bitwise).
std::int64_t bruteForceOverlap(const std::vector<Rect>& shots) {
  std::int64_t overlap = 0;
  for (std::size_t i = 0; i < shots.size(); ++i) {
    for (std::size_t j = i + 1; j < shots.size(); ++j) {
      overlap += shots[i].intersection(shots[j]).area();
    }
  }
  return overlap;
}

TEST(ShotStatsTest, SweepMatchesBruteForceOracle) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    // Vary density: tight clusters stress the active set, spread-out
    // sets stress the pruning.
    const int n = 1 + static_cast<int>(rng() % 120);
    const int space = trial % 2 == 0 ? 300 : 4000;
    std::uniform_int_distribution<int> pos(0, space);
    std::uniform_int_distribution<int> size(1, 150);
    std::vector<Rect> shots;
    for (int i = 0; i < n; ++i) {
      const int x = pos(rng);
      const int y = pos(rng);
      shots.push_back({x, y, x + size(rng), y + size(rng)});
    }
    const ShotStats stats = computeShotStats(shots);
    const double expected =
        stats.totalShotArea > 0
            ? static_cast<double>(bruteForceOverlap(shots)) /
                  static_cast<double>(stats.totalShotArea)
            : 0.0;
    ASSERT_EQ(stats.overlapFraction, expected)
        << "trial " << trial << " with " << n << " shots";
  }
}

TEST(ShotStatsTest, SweepHandlesTouchingAndNestedShots) {
  // Edge-touching pairs (zero-area intersections, prune boundary) and
  // full containment.
  const std::vector<Rect> shots{
      {0, 0, 100, 100}, {100, 0, 200, 100},  // share the x=100 edge
      {20, 20, 80, 80},                      // nested in the first
      {0, 100, 100, 200},                    // shares the y=100 edge
  };
  const ShotStats stats = computeShotStats(shots);
  const double expected = static_cast<double>(bruteForceOverlap(shots)) /
                          static_cast<double>(stats.totalShotArea);
  EXPECT_EQ(stats.overlapFraction, expected);
  EXPECT_DOUBLE_EQ(
      stats.overlapFraction,
      static_cast<double>(60 * 60) /
          static_cast<double>(stats.totalShotArea));
}

}  // namespace
}  // namespace mbf
