// Tests for the parallel execution layer: the work-stealing pool, the
// chunked parallelFor, and — most importantly — the determinism contract:
// every parallel path must produce byte-identical results for any thread
// count. FP addition is not associative, so these tests compare doubles
// with exact ==, not tolerances.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "benchgen/opc_synth.h"
#include "ebeam/intensity_map.h"
#include "fracture/problem.h"
#include "fracture/verifier.h"
#include "mdp/layout.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace mbf {
namespace {

// --- ThreadPool ---------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  const int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    if (!pool.tryRunOne()) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, TryRunOneDrainsFromNonWorkerThread) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  // The calling thread helps; combined with the worker, every task runs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    if (!pool.tryRunOne()) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 8);
  EXPECT_FALSE(pool.tryRunOne());  // queues drained
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolveThreads(0), 1);
  EXPECT_EQ(ThreadPool::resolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::resolveThreads(6), 6);
  EXPECT_EQ(ThreadPool::resolveThreads(-3), 1);
}

// --- parallelFor --------------------------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallelFor(0, n, 4, 7, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndSingleChunkRanges) {
  int calls = 0;
  parallelFor(5, 5, 8, 1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(0, 3, 8, 16, [&](int) { ++calls; });  // one chunk: serial
  EXPECT_EQ(calls, 3);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  std::vector<std::atomic<int>> hits(16 * 64);
  parallelFor(0, 16, 4, 1, [&](int outer) {
    parallelFor(0, 64, 4, 4, [&](int inner) {
      hits[static_cast<std::size_t>(outer * 64 + inner)].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

// --- IntensityMap bulk application --------------------------------------

std::vector<Rect> randomShots(std::uint32_t seed, int count, int span) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pos(0, span);
  std::uniform_int_distribution<int> len(4, 40);
  std::vector<Rect> shots;
  shots.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int x0 = pos(rng);
    const int y0 = pos(rng);
    shots.push_back({x0, y0, x0 + len(rng), y0 + len(rng)});
  }
  return shots;
}

TEST(ParallelIntensityTest, BulkSetShotsMatchesSequentialAddBitwise) {
  const ProximityModel model(6.25);
  const std::vector<Rect> shots = randomShots(42, 60, 150);

  IntensityMap sequential(model, {-20, -20}, 230, 230);
  for (const Rect& s : shots) sequential.addShot(s);

  for (const int threads : {1, 2, 4}) {
    IntensityMap bulk(model, {-20, -20}, 230, 230);
    bulk.setShots(shots, threads);
    ASSERT_EQ(bulk.grid().data(), sequential.grid().data())
        << "threads=" << threads;
  }
}

// --- Verifier scan determinism ------------------------------------------

TEST(ParallelVerifierTest, ViolationsBitwiseEqualAcrossThreadCounts) {
  const Polygon shape = makeOpcShape(opcSuiteConfigs()[4]);

  FractureParams serialParams;
  serialParams.numThreads = 1;
  const Problem serialProblem(shape, serialParams);
  Verifier serialVerifier(serialProblem);
  const std::vector<Rect> shots = randomShots(7, 25, 100);
  serialVerifier.setShots(shots);
  const Violations serial = serialVerifier.violations();

  for (const int threads : {2, 4, 8}) {
    FractureParams params;
    params.numThreads = threads;
    const Problem problem(shape, params);
    Verifier verifier(problem);
    verifier.setShots(shots);
    const Violations v = verifier.violations();
    EXPECT_EQ(v.failOn, serial.failOn) << "threads=" << threads;
    EXPECT_EQ(v.failOff, serial.failOff) << "threads=" << threads;
    // Exact ==: per-row partials fold in row order on every path.
    EXPECT_EQ(v.cost, serial.cost) << "threads=" << threads;
  }
}

// --- Violation ledger property test -------------------------------------
//
// The ledger's contract: after ANY interleaving of add/remove/replace
// mutations, the lazily refreshed per-row ledger folds to exactly the
// same Violations a fresh full-grid scan produces — bit for bit, at
// every thread count — and the totals agree across thread counts.

TEST(ParallelVerifierTest, LedgerEqualsFreshScanOverRandomMutationCycles) {
  const Polygon shape = makeOpcShape(opcSuiteConfigs()[2]);

  std::vector<std::unique_ptr<Problem>> problems;
  std::vector<std::unique_ptr<Verifier>> verifiers;
  const int threadCounts[] = {1, 4, 8};
  for (const int threads : threadCounts) {
    FractureParams params;
    params.numThreads = threads;
    problems.push_back(std::make_unique<Problem>(shape, params));
    verifiers.push_back(std::make_unique<Verifier>(*problems.back()));
  }

  std::mt19937 rng(1729);
  std::uniform_int_distribution<int> pos(-10, 90);
  std::uniform_int_distribution<int> len(4, 40);
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<int> jitter(-2, 2);
  const auto randomRect = [&]() -> Rect {
    const int x0 = pos(rng);
    const int y0 = pos(rng);
    return {x0, y0, x0 + len(rng), y0 + len(rng)};
  };

  std::vector<Rect> shots = {randomRect(), randomRect(), randomRect()};
  for (auto& v : verifiers) v->setShots(shots);

  const int kCycles = 10000;
  for (int step = 0; step < kCycles; ++step) {
    switch (shots.size() < 2 ? 0 : op(rng)) {
      case 0: {  // add
        const Rect s = randomRect();
        shots.push_back(s);
        for (auto& v : verifiers) v->addShot(s);
        break;
      }
      case 1: {  // remove
        const std::size_t i = static_cast<std::size_t>(
            std::uniform_int_distribution<int>(
                0, static_cast<int>(shots.size()) - 1)(rng));
        shots.erase(shots.begin() + static_cast<std::ptrdiff_t>(i));
        for (auto& v : verifiers) v->removeShot(i);
        break;
      }
      default: {  // replace (the refiner's edge-move pattern)
        const std::size_t i = static_cast<std::size_t>(
            std::uniform_int_distribution<int>(
                0, static_cast<int>(shots.size()) - 1)(rng));
        Rect r = shots[i];
        r.x0 += jitter(rng);
        r.y1 += jitter(rng);
        if (r.empty()) r = randomRect();
        shots[i] = r;
        for (auto& v : verifiers) v->replaceShot(i, r);
        break;
      }
    }
    // Spot-check mid-stream (every mutation would be O(cycles * grid));
    // the final check below covers the fully mixed history.
    if (step % 997 == 0) {
      const Violations reference = verifiers[0]->violations();
      for (std::size_t k = 0; k < verifiers.size(); ++k) {
        EXPECT_EQ(verifiers[k]->violations(), verifiers[k]->scanViolations())
            << "step " << step << ", threads=" << threadCounts[k];
        EXPECT_EQ(verifiers[k]->violations(), reference)
            << "step " << step << ", threads=" << threadCounts[k];
      }
    }
  }

  const Violations reference = verifiers[0]->violations();
  for (std::size_t k = 0; k < verifiers.size(); ++k) {
    // Exact ==: Violations comparison is bitwise on the cost double.
    EXPECT_EQ(verifiers[k]->violations(), verifiers[k]->scanViolations())
        << "threads=" << threadCounts[k];
    EXPECT_EQ(verifiers[k]->violations(), reference)
        << "threads=" << threadCounts[k];
    EXPECT_TRUE(verifiers[k]->ledgerMatchesScan());
  }
}

// --- End-to-end layout determinism (the issue's acceptance test) --------

TEST(ParallelLayoutTest, FractureLayoutParallelIsByteIdentical) {
  std::vector<LayoutShape> shapes;
  const std::vector<OpcSynthConfig> suite = opcSuiteConfigs();
  for (std::size_t i = 0; i < suite.size() && i < 6; ++i) {
    LayoutShape shape;
    shape.rings.push_back(makeOpcShape(suite[i]));
    shapes.push_back(std::move(shape));
  }

  BatchConfig serialConfig;
  serialConfig.threads = 1;
  serialConfig.params.numThreads = 1;
  const BatchResult serial = fractureLayoutParallel(shapes, serialConfig);
  ASSERT_EQ(serial.solutions.size(), shapes.size());

  for (const int threads : {2, 8}) {
    BatchConfig config;
    config.threads = threads;
    config.params.numThreads = threads;
    const BatchResult result = fractureLayoutParallel(shapes, config);
    ASSERT_EQ(result.solutions.size(), shapes.size());
    EXPECT_EQ(result.totalShots, serial.totalShots);
    EXPECT_EQ(result.totalFailingPixels, serial.totalFailingPixels);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      // Byte-identical shot lists, not merely equivalent ones.
      EXPECT_EQ(result.solutions[i].shots, serial.solutions[i].shots)
          << "shape " << i << ", threads=" << threads;
      // And identical Violations when re-evaluated serially.
      FractureParams evalParams;
      const Problem problem(shapes[i].rings, evalParams);
      const Violations a =
          evaluateShots(problem, serial.solutions[i].shots);
      const Violations b =
          evaluateShots(problem, result.solutions[i].shots);
      EXPECT_EQ(a.failOn, b.failOn);
      EXPECT_EQ(a.failOff, b.failOff);
      EXPECT_EQ(a.cost, b.cost);
    }
  }
}

}  // namespace
}  // namespace mbf
