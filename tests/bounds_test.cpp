// Tests for the heuristic lower-bound estimator.
#include <gtest/gtest.h>

#include "benchgen/ilt_synth.h"
#include "bounds/bounds.h"
#include "fracture/model_based_fracturer.h"

namespace mbf {
namespace {

TEST(BoundsTest, SquareIsOne) {
  Problem p(Polygon({{0, 0}, {60, 0}, {60, 60}, {0, 60}}), FractureParams{});
  const BoundsEstimate est = estimateLowerBound(p);
  EXPECT_EQ(est.lower(), 1);
}

TEST(BoundsTest, SeparatedArmsNeedSeparateShots) {
  // Long thin L: no single shot covers both arms, clique bound >= 2.
  Polygon l({{0, 0}, {200, 0}, {200, 16}, {16, 16}, {16, 200}, {0, 200}});
  Problem p(l, FractureParams{});
  const BoundsEstimate est = estimateLowerBound(p);
  EXPECT_GE(est.lower(), 2);
}

TEST(BoundsTest, AreaBoundKicksInForElongatedShapes) {
  // A 400x14 bar: the largest inscribed shot is the bar itself, so the
  // area bound is 1 -- but for a plus of thin bars the largest shot
  // covers only one bar.
  Polygon plus({{190, 0},  {210, 0},  {210, 190}, {400, 190},
                {400, 210}, {210, 210}, {210, 400}, {190, 400},
                {190, 210}, {0, 210},  {0, 190},  {190, 190}});
  Problem p(plus, FractureParams{});
  const BoundsEstimate est = estimateLowerBound(p);
  EXPECT_GE(est.areaBound, 2);
}

TEST(BoundsTest, NeverAboveOurSolutionOnSuite) {
  // The bound is heuristic but must stay below any feasible solution we
  // can actually produce.
  for (const int idx : {0, 2, 5}) {
    const IltSynthConfig cfg =
        iltSuiteConfigs()[static_cast<std::size_t>(idx)];
    const IltShape shape = makeIltShapeWithArms(cfg);
    Problem p(shape.target, FractureParams{});
    const BoundsEstimate est = estimateLowerBound(p);
    // Compare against the generator reference (feasible by construction).
    EXPECT_LE(est.lower(), static_cast<int>(shape.generatorArms.size()))
        << cfg.name();
  }
}

TEST(BoundsTest, BothComponentsAtLeastOne) {
  Problem p(Polygon({{0, 0}, {30, 0}, {30, 30}, {0, 30}}), FractureParams{});
  const BoundsEstimate est = estimateLowerBound(p);
  EXPECT_GE(est.cliqueBound, 1);
  EXPECT_GE(est.areaBound, 1);
}

}  // namespace
}  // namespace mbf
