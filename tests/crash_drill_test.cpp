// Crash drills: process-level verification of the crash-recovery layer
// (DESIGN.md section 14) against the real mbf_cli binary. Run as:
//
//   mbf_crash_drill <path-to-mbf_cli>
//
// Drills:
//   1. SIGKILL + resume: a journaled run is SIGKILLed at randomized
//      points; `--resume` completes it and the final .shots output is
//      byte-identical to an uninterrupted run, at 1, 4 and 8 threads.
//   2. Supervised crash isolation: `--isolate` with an injected kCrash
//      survives the dying workers, bisects to the culprit shape,
//      degrades only it (output identical to an in-process degradation
//      of the same shape), and exits with the partial-success code 5.
//   3. Watchdog: `--isolate` with an injected kHang is SIGKILLed by the
//      wall-clock watchdog and converges exactly like the crash case.
//
// Standalone driver (no gtest) because it exercises the CLI process
// boundary — fork/exec, signals, exit codes — not library internals.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "benchgen/ilt_synth.h"
#include "io/poly_io.h"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("%-56s %s\n", what.c_str(), ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

std::string readBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

/// Runs mbf_cli to completion; returns the exit code, -2 on signal death.
int runCli(const std::string& cli, const std::vector<std::string>& args) {
  std::string cmd = "'" + cli + "'";
  for (const std::string& a : args) cmd += " '" + a + "'";
  cmd += " > /dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  if (raw == -1) return -1;
  if (!WIFEXITED(raw)) return -2;
  return WEXITSTATUS(raw);
}

/// Launches mbf_cli, SIGKILLs it after `delayMs`, reaps it. Returns true
/// when the process was actually killed mid-run (false = it finished
/// first, which is fine — the drill then just replays a full journal).
bool runAndKill(const std::string& cli, const std::vector<std::string>& args,
                int delayMs) {
  std::vector<std::string> storage = args;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(cli.c_str()));
  for (std::string& a : storage) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    const int nul = open("/dev/null", O_WRONLY);
    if (nul >= 0) {
      dup2(nul, STDOUT_FILENO);
      dup2(nul, STDERR_FILENO);
      close(nul);
    }
    execv(cli.c_str(), argv.data());
    _exit(127);
  }
  if (pid < 0) return false;
  usleep(static_cast<useconds_t>(delayMs) * 1000);
  const bool killed = kill(pid, SIGKILL) == 0;
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return killed && WIFSIGNALED(wstatus);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mbf_crash_drill <path-to-mbf_cli>\n";
    return 2;
  }
  const std::string cli = argv[1];
  const std::string dir = "crash_drill_tmp";
  std::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'").c_str());

  // A layout heavy enough that the kill points land mid-batch: spaced-out
  // ILT shapes (the translate keeps groupRings from nesting them).
  const int numShapes = 12;
  std::vector<mbf::Polygon> rings;
  for (int i = 0; i < numShapes; ++i) {
    mbf::IltSynthConfig cfg;
    cfg.seed = 7000 + static_cast<unsigned>(i);
    mbf::Polygon ring = mbf::makeIltShape(cfg);
    ring.translate({i * 4000, 0});
    rings.push_back(std::move(ring));
  }
  const std::string input = dir + "/layout.poly";
  if (!mbf::savePolygons(input, rings)) {
    std::cerr << "cannot write " << input << "\n";
    return 2;
  }
  const std::vector<std::string> baseFlags = {"--nmax=3000"};

  // The uninterrupted reference output.
  const std::string refShots = dir + "/ref.shots";
  {
    std::vector<std::string> args = {input, refShots};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 0, "reference run exits 0");
  }
  const std::string refBytes = readBytes(refShots);
  check(!refBytes.empty(), "reference run produced output");

  // --- Drill 1: SIGKILL at randomized points, then --resume -------------
  std::mt19937 rng(20260806);  // fixed seed: reproducible kill points
  const int resumeThreads[] = {1, 4, 8};
  for (int point = 0; point < 5; ++point) {
    const int delayMs = 20 + static_cast<int>(rng() % 350);
    const int threads = resumeThreads[point % 3];
    const std::string tag = "k" + std::to_string(point);
    const std::string journal = dir + "/" + tag + ".journal";
    const std::string shots = dir + "/" + tag + ".shots";

    std::vector<std::string> killArgs = {input, shots, "--threads=2",
                                         "--journal=" + journal};
    killArgs.insert(killArgs.end(), baseFlags.begin(), baseFlags.end());
    const bool killed = runAndKill(cli, killArgs, delayMs);

    std::vector<std::string> resumeArgs = {
        input, shots, "--threads=" + std::to_string(threads),
        "--journal=" + journal, "--resume"};
    resumeArgs.insert(resumeArgs.end(), baseFlags.begin(), baseFlags.end());
    const int exit = runCli(cli, resumeArgs);
    check(exit == 0, tag + ": resume (" + std::to_string(delayMs) + "ms" +
                         (killed ? ", killed" : ", finished") + ", " +
                         std::to_string(threads) + " threads) exits 0");
    check(readBytes(shots) == refBytes,
          tag + ": resumed output byte-identical");
  }

  // Drill 1 epilogue: a killed-and-resumed run must also pass the
  // --verify acceptance gate — artifact hashes and independent re-check.
  {
    const std::string journal = dir + "/kv.journal";
    const std::string shots = dir + "/kv.shots";
    const std::string json = dir + "/kv.json";
    std::vector<std::string> killArgs = {input, shots, "--threads=2",
                                         "--journal=" + journal,
                                         "--metrics-json=" + json};
    killArgs.insert(killArgs.end(), baseFlags.begin(), baseFlags.end());
    runAndKill(cli, killArgs, 120);
    std::vector<std::string> resumeArgs = {input, shots,
                                           "--journal=" + journal,
                                           "--resume",
                                           "--metrics-json=" + json};
    resumeArgs.insert(resumeArgs.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, resumeArgs) == 0, "kv: resume after SIGKILL exits 0");
    check(readBytes(shots) == refBytes, "kv: resumed output byte-identical");
    check(runCli(cli, {"--verify", json}) == 0,
          "kv: killed+resumed run passes --verify");
  }

  // --- Drill 2: --isolate survives an injected worker crash -------------
  // In-process reference: the same shape degraded via kThrow lands on the
  // same fallback fracture the crash-isolated culprit gets.
  const int culprit = 5;
  const std::string throwShots = dir + "/throw.shots";
  {
    std::vector<std::string> args = {
        input, throwShots, "--inject=throw@" + std::to_string(culprit)};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 1, "in-process throw reference exits 1");
  }
  const std::string throwBytes = readBytes(throwShots);
  check(!throwBytes.empty() && throwBytes != refBytes,
        "throw reference degraded exactly one shape");

  const std::string crashShots = dir + "/crash.shots";
  {
    std::vector<std::string> args = {
        input, crashShots, "--isolate", "--jobs=3",
        "--inject=crash@" + std::to_string(culprit)};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 5,
          "isolate + injected crash exits 5 (partial success)");
  }
  check(readBytes(crashShots) == throwBytes,
        "crash-isolated output == in-process degradation");

  // A clean supervised run, for contrast: identical output, exit 0.
  const std::string cleanShots = dir + "/clean.shots";
  {
    std::vector<std::string> args = {input, cleanShots, "--isolate",
                                     "--jobs=3"};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 0, "clean isolate run exits 0");
  }
  check(readBytes(cleanShots) == refBytes,
        "clean isolate output == plain output");

  // --- Drill 3: the watchdog SIGKILLs hung workers ----------------------
  const int hangCulprit = 3;
  const std::string hangRefShots = dir + "/hang_ref.shots";
  {
    std::vector<std::string> args = {
        input, hangRefShots,
        "--inject=throw@" + std::to_string(hangCulprit)};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 1, "hang reference run exits 1");
  }
  const std::string hangShots = dir + "/hang.shots";
  {
    std::vector<std::string> args = {
        input, hangShots, "--isolate", "--jobs=2",
        "--worker-timeout-ms=1500", "--retries=1",
        "--inject=hang@" + std::to_string(hangCulprit)};
    args.insert(args.end(), baseFlags.begin(), baseFlags.end());
    check(runCli(cli, args) == 5,
          "isolate + injected hang exits 5 (watchdog fired)");
  }
  check(readBytes(hangShots) == readBytes(hangRefShots),
        "hang-isolated output == in-process degradation");

  if (g_failures > 0) {
    std::fprintf(stderr, "%d crash drill check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all crash drills passed\n");
  return 0;
}
