// Tests for multi-ring targets (outer boundary + holes): classification,
// corner extraction over hole boundaries, and the full pipeline on
// frame/donut shapes.
#include <gtest/gtest.h>

#include "benchgen/ilt_synth.h"
#include "baselines/greedy_set_cover.h"
#include "fracture/model_based_fracturer.h"
#include "fracture/verifier.h"

namespace mbf {
namespace {

// A 100x100 square with a 40x40 hole in the middle.
std::vector<Polygon> squareWithHole() {
  return {Polygon({{0, 0}, {100, 0}, {100, 100}, {0, 100}}),
          Polygon({{30, 30}, {70, 30}, {70, 70}, {30, 70}})};
}

TEST(HolesTest, RingOrientationCanonicalized) {
  Problem p(squareWithHole(), FractureParams{});
  ASSERT_EQ(p.rings().size(), 2u);
  EXPECT_TRUE(p.rings()[0].isCounterClockwise());
  EXPECT_FALSE(p.rings()[1].isCounterClockwise());
  // Outer ring selected by area regardless of input order.
  EXPECT_EQ(p.rings()[0].bbox(), Rect(0, 0, 100, 100));
}

TEST(HolesTest, HoleInteriorIsOff) {
  Problem p(squareWithHole(), FractureParams{});
  const Point o = p.origin();
  auto cls = [&](int wx, int wy) { return p.pixelClass(wx - o.x, wy - o.y); };
  EXPECT_EQ(cls(50, 50), PixelClass::kOff);       // hole centre
  EXPECT_EQ(cls(15, 50), PixelClass::kOn);        // annulus
  EXPECT_EQ(cls(30, 50), PixelClass::kDontCare);  // hole boundary
  EXPECT_EQ(cls(-10, 50), PixelClass::kOff);      // outside
}

TEST(HolesTest, AreaAccountsForHole) {
  Problem p(squareWithHole(), FractureParams{});
  EXPECT_EQ(p.insideArea({0, 0, 100, 100}), 100 * 100 - 40 * 40);
  EXPECT_EQ(p.insideArea({40, 40, 60, 60}), 0);
}

TEST(HolesTest, CornerExtractionCoversHoleBoundary) {
  Problem p(squareWithHole(), FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  EXPECT_EQ(ex.simplifiedRings.size(), 2u);
  // 4 outer convex corners (one point each after clustering) + 4 hole
  // corners. Hole corners are reflex corners of the annulus, so each
  // contributes two points of *different* types that must not merge --
  // exactly like an L-shape's notch.
  EXPECT_EQ(ex.corners.size(), 12u);
  int nearHole = 0;
  for (const CornerPoint& c : ex.corners) {
    if (c.pos.x > 5 && c.pos.x < 95 && c.pos.y > 5 && c.pos.y < 95) {
      ++nearHole;
    }
  }
  EXPECT_EQ(nearHole, 8);  // the hole's corner points
}

TEST(HolesTest, FramePipelineIsNearFeasible) {
  const FrameShape frame = makeFrameShape(5);
  ASSERT_EQ(frame.rings.size(), 2u);
  Problem p(frame.rings, FractureParams{});
  // Generator arms are feasible by construction.
  EXPECT_EQ(evaluateShots(p, frame.generatorArms).total(), 0);

  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_GE(sol.shotCount(), 4);  // a frame needs at least four shots
  const double fraction =
      static_cast<double>(sol.failingPixels()) /
      static_cast<double>(p.numOnPixels() + p.numOffPixels());
  EXPECT_LT(fraction, 0.005);
}

TEST(HolesTest, GscHandlesHoles) {
  const FrameShape frame = makeFrameShape(7);
  Problem p(frame.rings, FractureParams{});
  const Solution sol = GreedySetCover{}.fracture(p);
  EXPECT_EQ(sol.failOn, 0);
  // No candidate may blanket the hole: shots barely cover its centre.
  const Rect holeCentre{45, 45, 55, 55};
  for (const Rect& s : sol.shots) {
    EXPECT_LT(holeCentre.intersection(s).area(), 60) << s.str();
  }
}

TEST(HolesTest, SingleRingCtorStillWorks) {
  Problem a(Polygon({{0, 0}, {40, 0}, {40, 40}, {0, 40}}), FractureParams{});
  Problem b(std::vector<Polygon>{Polygon({{0, 0}, {40, 0}, {40, 40}, {0, 40}})},
            FractureParams{});
  EXPECT_EQ(a.numOnPixels(), b.numOnPixels());
  EXPECT_EQ(a.numOffPixels(), b.numOffPixels());
}

TEST(HolesTest, FrameShapeDeterministic) {
  const FrameShape a = makeFrameShape(11);
  const FrameShape b = makeFrameShape(11);
  ASSERT_EQ(a.rings.size(), b.rings.size());
  for (std::size_t i = 0; i < a.rings.size(); ++i) {
    EXPECT_EQ(a.rings[i].vertices(), b.rings[i].vertices());
  }
}

}  // namespace
}  // namespace mbf
