// Property tests for the minimum rectangular partition over randomly
// generated rectilinear polygons: exact tiling (area, disjointness,
// coverage), the Ohtsuki count formula, and L-shape pairing invariants.
#include <gtest/gtest.h>

#include <random>

#include "baselines/rect_partition.h"
#include "extensions/lshape.h"
#include "geometry/contour.h"
#include "geometry/rasterizer.h"

namespace mbf {
namespace {

// Random hole-free rectilinear polygon: outer contour of a union of
// random rectangles anchored to stay connected.
Polygon randomRectilinear(unsigned seed, int rects) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> size(8, 40);
  std::vector<Rect> parts{{0, 0, size(rng) + 10, size(rng) + 10}};
  for (int i = 1; i < rects; ++i) {
    const Rect& host = parts[std::uniform_int_distribution<std::size_t>(
        0, parts.size() - 1)(rng)];
    const int ax = host.x0 + std::uniform_int_distribution<int>(
                                 0, std::max(1, host.width() - 1))(rng);
    const int ay = host.y0 + std::uniform_int_distribution<int>(
                                 0, std::max(1, host.height() - 1))(rng);
    const int w = size(rng);
    const int h = size(rng);
    parts.push_back({ax - w / 2, ay - h / 2, ax + w - w / 2, ay + h - h / 2});
  }
  Rect box = parts.front();
  for (const Rect& r : parts) box = box.unionWith(r);
  box = box.inflated(2);
  MaskGrid mask(box.width(), box.height(), 0);
  for (const Rect& r : parts) {
    for (int y = r.y0 - box.y0; y < r.y1 - box.y0; ++y) {
      for (int x = r.x0 - box.x0; x < r.x1 - box.x0; ++x) {
        if (mask.inBounds(x, y)) mask.at(x, y) = 1;
      }
    }
  }
  return largestOuterContour(mask, box.bl());
}

class PartitionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionProperty, TilesExactly) {
  const Polygon poly = randomRectilinear(GetParam(), 3 + GetParam() % 6);
  ASSERT_GE(poly.size(), 4u);
  const PartitionResult r = minRectPartition(poly);

  // Pairwise disjoint.
  for (std::size_t i = 0; i < r.rects.size(); ++i) {
    for (std::size_t j = i + 1; j < r.rects.size(); ++j) {
      ASSERT_FALSE(r.rects[i].intersects(r.rects[j]))
          << r.rects[i].str() << " vs " << r.rects[j].str();
    }
  }
  // Area adds up.
  double total = 0.0;
  for (const Rect& rect : r.rects) total += double(rect.area());
  EXPECT_DOUBLE_EQ(total, poly.area());

  // Raster coverage identical.
  const Rect box = poly.bbox().inflated(1);
  MaskGrid fromPoly(box.width(), box.height(), 0);
  rasterizePolygon(poly, box.bl(), fromPoly);
  MaskGrid fromRects(box.width(), box.height(), 0);
  for (const Rect& rect : r.rects) {
    for (int y = rect.y0 - box.y0; y < rect.y1 - box.y0; ++y) {
      for (int x = rect.x0 - box.x0; x < rect.x1 - box.x0; ++x) {
        fromRects.at(x, y) = 1;
      }
    }
  }
  EXPECT_EQ(fromPoly.data(), fromRects.data());
}

TEST_P(PartitionProperty, CountWithinOhtsukiBounds) {
  const Polygon poly = randomRectilinear(GetParam() + 1000, 4);
  ASSERT_GE(poly.size(), 4u);
  const PartitionResult r = minRectPartition(poly);
  // Upper bound: one cut per concave vertex. Lower bound: the chord
  // formula (#rects >= concave - chords + 1 with chords <= concave / 2).
  EXPECT_LE(static_cast<int>(r.rects.size()), r.concaveVertices + 1);
  EXPECT_GE(static_cast<int>(r.rects.size()),
            r.concaveVertices / 2 + 1 - r.independentChords);
  EXPECT_GE(static_cast<int>(r.rects.size()), 1);
}

TEST_P(PartitionProperty, LShapePairingStaysLegal) {
  const Polygon poly = randomRectilinear(GetParam() + 2000, 5);
  ASSERT_GE(poly.size(), 4u);
  const LShapeResult r = lShapeFracture(poly);
  EXPECT_LE(r.shotCount(), r.rectanglesBeforePairing);
  EXPECT_GE(r.shotCount(),
            (r.rectanglesBeforePairing + 1) / 2);  // at best pairs halve
  for (const LShot& s : r.shots) {
    if (!s.isRectangular()) {
      EXPECT_TRUE(canFormLShot(s.a, s.b));
    }
  }
  // Flattened area equals polygon area (pairing never loses geometry).
  double total = 0.0;
  for (const Rect& rect : flattenLShots(r.shots)) {
    total += double(rect.area());
  }
  EXPECT_DOUBLE_EQ(total, poly.area());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace mbf
