// Tests for the two-Gaussian PSF extension (forward + backscatter).
#include <gtest/gtest.h>

#include "fracture/model_based_fracturer.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

TEST(BackscatterTest, EtaZeroMatchesSingleGaussian) {
  const ProximityModel single(6.25, 0.5);
  const ProximityModel twoG(6.25, 0.5, 0.0, 18.75);
  for (double t = -20.0; t <= 20.0; t += 1.7) {
    EXPECT_DOUBLE_EQ(single.edgeProfileExact(t), twoG.edgeProfileExact(t));
  }
}

TEST(BackscatterTest, ProfileIsMixture) {
  const double eta = 0.2;
  const ProximityModel fwd(6.25, 0.5);
  const ProximityModel back(18.75, 0.5);
  const ProximityModel mix(6.25, 0.5, eta, 18.75);
  for (double t = -30.0; t <= 30.0; t += 2.3) {
    EXPECT_NEAR(mix.edgeProfileExact(t),
                (1 - eta) * fwd.edgeProfileExact(t) +
                    eta * back.edgeProfileExact(t),
                1e-12);
  }
}

TEST(BackscatterTest, InfluenceRadiusGrowsWithBackscatter) {
  const ProximityModel single(6.25, 0.5);
  const ProximityModel mix(6.25, 0.5, 0.1, 20.0);
  EXPECT_GT(mix.influenceRadius(), single.influenceRadius());
  EXPECT_DOUBLE_EQ(mix.influenceRadius(), 60.0);
}

TEST(BackscatterTest, LutStillAccurate) {
  const ProximityModel mix(6.25, 0.5, 0.15, 20.0);
  for (double t = -70.0; t <= 70.0; t += 3.1) {
    EXPECT_NEAR(mix.edgeProfile(t), mix.edgeProfileExact(t), 1e-5) << t;
  }
}

TEST(BackscatterTest, MidEdgeStillPrintsAtHalf) {
  // The mixture of two antisymmetric profiles is antisymmetric, so an
  // isolated long edge still prints exactly at rho = 0.5 on the edge.
  const ProximityModel mix(6.25, 0.5, 0.2, 18.75);
  const Rect shot{0, 0, 200, 200};
  EXPECT_NEAR(mix.shotIntensity(shot, 0.0, 100.0), 0.5, 1e-6);
}

TEST(BackscatterTest, CornerRoundingWorsens) {
  // Backscatter softens the profile, so corner erosion deepens and the
  // printable 45-degree segment lengthens.
  const ProximityModel single(6.25, 0.5);
  const ProximityModel mix(6.25, 0.5, 0.2, 18.75);
  EXPECT_GT(mix.cornerErosionDepth(), single.cornerErosionDepth());
  EXPECT_GT(mix.computeLth(2.0), single.computeLth(2.0));
}

TEST(BackscatterTest, PipelineStillSolvesSquare) {
  FractureParams params;
  params.backscatterEta = 0.1;
  params.backscatterSigma = 15.0;
  Problem p(square(60), params);
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_TRUE(sol.feasible());
}

TEST(BackscatterTest, ParamsPlumbedThroughProblem) {
  FractureParams params;
  params.backscatterEta = 0.12;
  params.backscatterSigma = 17.0;
  Problem p(square(40), params);
  EXPECT_DOUBLE_EQ(p.model().backscatterEta(), 0.12);
  EXPECT_DOUBLE_EQ(p.model().backscatterSigma(), 17.0);
}

}  // namespace
}  // namespace mbf
