// Unit tests for the graph-coloring-based approximate fracturer
// (paper section 3, figures 3 and 4).
#include <gtest/gtest.h>

#include "fracture/coloring_fracturer.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

Polygon lShape(int arm, int thick) {
  return Polygon({{0, 0},
                  {arm, 0},
                  {arm, thick},
                  {thick, thick},
                  {thick, arm},
                  {0, arm}});
}

TEST(ColoringFracturerTest, SquareBecomesOneShot) {
  Problem p(square(60), FractureParams{});
  const ColoringArtifacts art =
      ColoringFracturer{}.fractureWithArtifacts(p);
  ASSERT_EQ(art.shots.size(), 1u);
  // The single shot covers the square with a small rounding overshoot.
  const Rect s = art.shots[0];
  EXPECT_LE(s.x0, 1);
  EXPECT_GE(s.x1, 59);
  EXPECT_LE(s.y0, 1);
  EXPECT_GE(s.y1, 59);
  EXPECT_LT(std::abs(s.x0 - (-4)), 8);  // overshoot is bounded (~Lth/2)
}

TEST(ColoringFracturerTest, LShapeBecomesFewShots) {
  // The minimum clique partition of an L's corner points is 2; the greedy
  // sequential coloring may spend one extra color (refinement merges it
  // away later -- see IntegrationTest.LShapeFracturesToTwoShots).
  Problem p(lShape(80, 30), FractureParams{});
  const ColoringArtifacts art =
      ColoringFracturer{}.fractureWithArtifacts(p);
  EXPECT_GE(art.shots.size(), 2u);
  EXPECT_LE(art.shots.size(), 3u);
}

TEST(ColoringFracturerTest, ColoringIsProperOnComplement) {
  Problem p(lShape(80, 30), FractureParams{});
  const ColoringArtifacts art =
      ColoringFracturer{}.fractureWithArtifacts(p);
  const Graph inv = art.compatibility.complement();
  EXPECT_TRUE(isProperColoring(inv, art.coloring));
}

TEST(ColoringFracturerTest, EveryShotMeetsMinSize) {
  for (const int size : {30, 45, 60, 90}) {
    Problem p(lShape(size, size / 2), FractureParams{});
    const Solution sol = ColoringFracturer{}.fracture(p);
    for (const Rect& s : sol.shots) {
      EXPECT_GE(s.width(), p.params().lmin);
      EXPECT_GE(s.height(), p.params().lmin);
    }
  }
}

TEST(ColoringFracturerTest, SolutionStatsFilled) {
  Problem p(square(60), FractureParams{});
  const Solution sol = ColoringFracturer{}.fracture(p);
  EXPECT_EQ(sol.method, "coloring");
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_GE(sol.runtimeSeconds, 0.0);
  // The approximate stage deliberately overshoots corners (shot corner
  // points sit Lth/(2 sqrt 2) outside), so a thin ring of Poff pixels
  // fails before refinement; it must stay a perimeter effect (a few px
  // per boundary nm), not an area effect.
  EXPECT_LT(static_cast<double>(sol.failingPixels()),
            6.0 * p.target().perimeter());
  EXPECT_EQ(sol.failOn, 0);
}

TEST(PlaceShotTest, FullClassUsesAllPins) {
  Problem p(square(60), FractureParams{});
  const std::vector<CornerPoint> cls{
      {{-2.0, -2.0}, CornerType::kBottomLeft},
      {{62.0, 62.0}, CornerType::kTopRight},
  };
  const Rect s = placeShotForClass(p, cls);
  EXPECT_EQ(s, Rect(-2, -2, 62, 62));
}

TEST(PlaceShotTest, TopEdgeClassExtendsToBottomBoundary) {
  Problem p(square(60), FractureParams{});
  const std::vector<CornerPoint> cls{
      {{-2.0, 62.0}, CornerType::kTopLeft},
      {{62.0, 62.0}, CornerType::kTopRight},
  };
  const Rect s = placeShotForClass(p, cls);
  EXPECT_EQ(s.x0, -2);
  EXPECT_EQ(s.x1, 62);
  // Free bottom edge extended to touch the square's bottom boundary.
  EXPECT_LE(s.y0, 0);
  EXPECT_GT(s.y0, -6);
}

TEST(PlaceShotTest, SinglePointClassExtendsBothFreeEdges) {
  Problem p(square(60), FractureParams{});
  const std::vector<CornerPoint> cls{
      {{-2.0, -2.0}, CornerType::kBottomLeft},
  };
  const Rect s = placeShotForClass(p, cls);
  EXPECT_EQ(s.bl(), Point(-2, -2));
  EXPECT_GE(s.x1, 59);
  EXPECT_GE(s.y1, 59);
}

TEST(PlaceShotTest, MinSizeEnforcedOnDegeneratePins) {
  Problem p(square(60), FractureParams{});
  // Two pins closer than Lmin in y.
  const std::vector<CornerPoint> cls{
      {{-2.0, 20.0}, CornerType::kBottomLeft},
      {{-2.0, 24.0}, CornerType::kTopLeft},
  };
  const Rect s = placeShotForClass(p, cls);
  EXPECT_GE(s.width(), p.params().lmin);
  EXPECT_GE(s.height(), p.params().lmin);
}

}  // namespace
}  // namespace mbf
