// Edge-case and error-path coverage across modules: degenerate inputs,
// boundary conditions, and configuration extremes.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/candidate_gen.h"
#include "baselines/matching_pursuit.h"
#include "ebeam/intensity_map.h"
#include "fracture/model_based_fracturer.h"
#include "geometry/rdp.h"
#include "io/poly_io.h"
#include "io/svg.h"
#include "io/table.h"
#include "mdp/layout.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

TEST(PolygonEdgeTest, NormalizeCollapsesDegenerateRing) {
  Polygon p({{0, 0}, {10, 0}, {20, 0}, {30, 0}});  // all collinear
  p.normalize();
  EXPECT_LT(p.size(), 3u);
}

TEST(PolygonEdgeTest, TinyRingSurvivesSimplifyRing) {
  const Polygon tri({{0, 0}, {10, 0}, {5, 8}});
  const std::vector<Vec2> out = simplifyRing(tri, 100.0);
  EXPECT_EQ(out.size(), 3u);  // n < 4 passes through untouched
}

TEST(PolygonEdgeTest, ContainsFarOutside) {
  const Polygon sq = square(10);
  EXPECT_FALSE(sq.contains({1e9, 1e9}));
  EXPECT_FALSE(sq.contains({-1e9, 5.0}));
}

TEST(RdpEdgeTest, TwoPointPolyline) {
  const std::vector<Vec2> two{{0, 0}, {10, 10}};
  EXPECT_EQ(simplifyPolyline(two, 1.0).size(), 2u);
}

TEST(IntensityMapEdgeTest, DoseWeightedAddRemoveIdentity) {
  const ProximityModel model;
  IntensityMap map(model, {0, 0}, 40, 40);
  map.addShot({5, 5, 25, 25}, 1.3);
  map.addShot({10, 10, 30, 30}, 0.7);
  map.removeShot({5, 5, 25, 25}, 1.3);
  map.removeShot({10, 10, 30, 30}, 0.7);
  for (const double v : map.grid().data()) {
    EXPECT_NEAR(v, 0.0, 1e-9);
  }
}

TEST(IntensityMapEdgeTest, DoseScalesLinearly) {
  const ProximityModel model;
  IntensityMap a(model, {0, 0}, 40, 40);
  IntensityMap b(model, {0, 0}, 40, 40);
  a.addShot({10, 10, 30, 30}, 2.0);
  b.addShot({10, 10, 30, 30}, 1.0);
  for (int y = 0; y < 40; y += 5) {
    for (int x = 0; x < 40; x += 5) {
      EXPECT_NEAR(a.at(x, y), 2.0 * b.at(x, y), 1e-5);
    }
  }
}

TEST(CandidateGenEdgeTest, SortedByAreaDescending) {
  Problem p(Polygon({{0, 0}, {80, 0}, {80, 30}, {30, 30}, {30, 80}, {0, 80}}),
            FractureParams{});
  const std::vector<Rect> cands = generateCandidateShots(p);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i - 1].area(), cands[i].area());
  }
}

TEST(MatchingPursuitEdgeTest, HighThresholdStopsEarly) {
  Problem p(square(40), FractureParams{});
  MatchingPursuitConfig cfg;
  cfg.minCorrelation = 1e12;  // nothing correlates this strongly
  const Solution sol = MatchingPursuit(cfg).fracture(p);
  EXPECT_EQ(sol.shotCount(), 0);
}

TEST(RefinerConfigTest, AllOpsDisabledStillTerminates) {
  FractureParams params;
  params.enableBias = false;
  params.enableAddRemove = false;
  params.enableMerge = false;
  Problem p(square(40), params);
  Refiner r(p);
  const Solution sol = r.refine({{10, 10, 30, 30}});
  // Edge moves alone: grows toward the square and stops at some local
  // optimum without looping forever.
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_LT(r.stats().iterations, params.nmax);
}

TEST(ProblemEdgeTest, VeryTightGammaStillClassifies) {
  FractureParams params;
  params.gamma = 0.4;
  Problem p(square(30), params);
  EXPECT_GT(p.numOnPixels(), 0);
  EXPECT_GT(p.numOffPixels(), 0);
}

TEST(SvgEdgeTest, SaveToBadPathFails) {
  SvgWriter svg({0, 0, 10, 10});
  EXPECT_FALSE(svg.save("/nonexistent-dir-xyz/out.svg").ok());
}

TEST(PolyIoEdgeTest, LoadMissingFileReturnsEmpty) {
  EXPECT_TRUE(loadPolygons("/nonexistent-dir-xyz/in.poly").empty());
  EXPECT_TRUE(loadShots("/nonexistent-dir-xyz/in.shots").empty());
}

TEST(PolyIoEdgeTest, SaveToBadPathFails) {
  const Polygon polys[] = {square(5)};
  EXPECT_FALSE(savePolygons("/nonexistent-dir-xyz/out.poly", polys));
}

TEST(TableEdgeTest, NegativeNumbersFormat) {
  EXPECT_EQ(Table::fmt(-3.5, 1), "-3.5");
  EXPECT_EQ(Table::fmt(std::int64_t{-42}), "-42");
}

TEST(LayoutEdgeTest, DeepNestingDoesNotCrash) {
  // Ring inside a hole inside an outer ring: only one nesting level is
  // supported; the grouping must not crash or lose rings silently beyond
  // assigning them to their innermost container.
  const std::vector<LayoutShape> shapes = groupRings(
      {square(100), Polygon({{20, 20}, {80, 20}, {80, 80}, {20, 80}}),
       Polygon({{40, 40}, {60, 40}, {60, 60}, {40, 60}})});
  std::size_t totalRings = 0;
  for (const LayoutShape& s : shapes) totalRings += s.rings.size();
  // The innermost ring nests inside the middle one, which nests inside
  // the outer: grouping keeps every ring somewhere.
  EXPECT_GE(totalRings, 2u);
  EXPECT_LE(totalRings, 3u);
}

TEST(SolutionEdgeTest, DefaultIsFeasibleEmpty) {
  const Solution sol;
  EXPECT_EQ(sol.shotCount(), 0);
  EXPECT_TRUE(sol.feasible());
  EXPECT_EQ(sol.failingPixels(), 0);
}

}  // namespace
}  // namespace mbf
