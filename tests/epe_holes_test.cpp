// EPE analysis on multi-ring targets and refinement robustness knobs.
#include <gtest/gtest.h>

#include "analysis/epe.h"
#include "benchgen/ilt_synth.h"
#include "fracture/model_based_fracturer.h"

namespace mbf {
namespace {

TEST(EpeHolesTest, FrameSolutionEpeCoversHoleBoundary) {
  const FrameShape frame = makeFrameShape(9);
  ASSERT_EQ(frame.rings.size(), 2u);
  Problem p(frame.rings, FractureParams{});
  // The generator arms are a feasible reference; EPE against them must be
  // in-band on both the outer and the hole boundary.
  const EpeReport r = analyzeEpe(p, frame.generatorArms);
  EXPECT_EQ(r.unprintedCount, 0);
  EXPECT_LT(r.maxAbsEpe, p.params().gamma + 1.5);

  // Samples exist inside the frame's bbox interior (the hole boundary).
  const Rect inner = frame.rings[1].bbox();
  int holeSamples = 0;
  for (const EpeSample& s : r.samples) {
    if (inner.inflated(3).contains(
            Point{static_cast<int>(s.pos.x), static_cast<int>(s.pos.y)})) {
      ++holeSamples;
    }
  }
  EXPECT_GT(holeSamples, 4);
}

TEST(EpeHolesTest, SampleSpacingControlsSampleCount) {
  Problem p(Polygon({{0, 0}, {60, 0}, {60, 60}, {0, 60}}), FractureParams{});
  const std::vector<Rect> shots{{0, 0, 60, 60}};
  EpeConfig coarse;
  coarse.sampleSpacing = 12.0;
  EpeConfig fine;
  fine.sampleSpacing = 3.0;
  EXPECT_GT(analyzeEpe(p, shots, fine).samples.size(),
            2 * analyzeEpe(p, shots, coarse).samples.size());
}

TEST(EpeHolesTest, SearchRangeControlsUnprinted) {
  Problem p(Polygon({{0, 0}, {60, 0}, {60, 60}, {0, 60}}), FractureParams{});
  // Shot shifted 6 nm: with a 3 nm search range the contour is out of
  // reach along the two receding edges; a 12 nm range recovers most of
  // them (corner-adjacent samples have no lateral dose at all and stay
  // unprinted regardless of range -- a real defect, correctly reported).
  const std::vector<Rect> shots{{6, 6, 66, 66}};
  EpeConfig narrow;
  narrow.searchRange = 3.0;
  EpeConfig wide;
  wide.searchRange = 12.0;
  const int narrowMissing = analyzeEpe(p, shots, narrow).unprintedCount;
  const int wideMissing = analyzeEpe(p, shots, wide).unprintedCount;
  EXPECT_GT(narrowMissing, wideMissing);
  EXPECT_GT(wideMissing, 0);  // the shifted-away corners really are defects
}

TEST(RefinerKnobTest, ZeroBlockingRadiusStillConverges) {
  FractureParams params;
  params.blockingSigmas = 0.0;  // no anti-cycling guard at all
  Problem p(Polygon({{0, 0}, {60, 0}, {60, 60}, {0, 60}}), params);
  Refiner r(p);
  const Solution sol = r.refine({{8, 8, 52, 52}});
  EXPECT_TRUE(sol.feasible());
  EXPECT_EQ(sol.shotCount(), 1);
}

TEST(RefinerKnobTest, HugeBlockingRadiusLimitsToOneMovePerIteration) {
  FractureParams params;
  params.blockingSigmas = 1000.0;
  Problem p(Polygon({{0, 0}, {60, 0}, {60, 60}, {0, 60}}), params);
  Verifier v(p);
  v.setShots(std::vector<Rect>{{8, 8, 52, 52}});
  Refiner r(p);
  EXPECT_LE(r.greedyShotEdgeAdjustment(v), 1);
}

}  // namespace
}  // namespace mbf
