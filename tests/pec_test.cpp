// Tests for proximity-effect correction and multi-component targets.
#include <gtest/gtest.h>

#include "extensions/pec.h"
#include "fracture/verifier.h"

namespace mbf {
namespace {

Polygon bar(int x0, int w, int h) {
  return Polygon({{x0, 0}, {x0 + w, 0}, {x0 + w, h}, {x0, h}});
}

// Dense array of bars: enough neighbours that backscatter accumulates.
std::vector<Polygon> barArray(int count, int width, int pitch, int height) {
  std::vector<Polygon> bars;
  for (int i = 0; i < count; ++i) bars.push_back(bar(i * pitch, width, height));
  return bars;
}

std::vector<Rect> barShots(int count, int width, int pitch, int height) {
  std::vector<Rect> shots;
  for (int i = 0; i < count; ++i) {
    shots.push_back({i * pitch, 0, i * pitch + width, height});
  }
  return shots;
}

TEST(MultiComponentTest, DisjointSquaresBothClassified) {
  // Two separated squares in one Problem: both interiors are Pon.
  std::vector<Polygon> rings{bar(0, 40, 40), bar(100, 40, 40)};
  Problem p(rings, FractureParams{});
  const Point o = p.origin();
  auto cls = [&](int wx, int wy) { return p.pixelClass(wx - o.x, wy - o.y); };
  EXPECT_EQ(cls(20, 20), PixelClass::kOn);
  EXPECT_EQ(cls(120, 20), PixelClass::kOn);
  EXPECT_EQ(cls(70, 20), PixelClass::kOff);  // the gap
  // One shot per square is feasible.
  const std::vector<Rect> shots{{0, 0, 40, 40}, {100, 0, 140, 40}};
  EXPECT_EQ(evaluateShots(p, shots).total(), 0);
}

TEST(PecTest, NoBackscatterNeedsNoCorrection) {
  Problem p(barArray(3, 30, 60, 80), FractureParams{});
  const PecReport report = runPec(p, barShots(3, 30, 60, 80));
  EXPECT_EQ(report.before.total(), 0);
  // Without backscatter the isolated target equals the actual exposure,
  // so doses stay ~1 and nothing breaks.
  EXPECT_NEAR(report.doseMin, 1.0, 0.06);
  EXPECT_NEAR(report.doseMax, 1.0, 0.06);
  EXPECT_EQ(report.after.total(), 0);
}

TEST(PecTest, BackscatterFloodsGapsPecDrainsThem) {
  FractureParams params;
  params.backscatterEta = 0.35;
  params.backscatterSigma = 5.0 * params.sigma;
  // Tight array: 8 nm gaps, well inside the backscatter range.
  Problem p(barArray(5, 26, 34, 160), params);
  const std::vector<Rect> shots = barShots(5, 26, 34, 160);

  const PecReport report = runPec(p, shots);
  // Uncorrected: neighbours' backscatter floods the gaps (overexposure).
  EXPECT_GT(report.before.failOff, 0);
  // Corrected: inner shots get reduced dose; the gap overexposure drops.
  // (Corner erosion -- a geometry problem dose cannot fix -- may remain
  // as failOn; PEC's job is the density-dependent background.)
  EXPECT_LT(report.after.failOff, report.before.failOff / 2 + 1);
  EXPECT_LT(report.doseMin, 1.0);
}

TEST(PecTest, InnerShotsGetLowerDoseThanOuter) {
  FractureParams params;
  params.backscatterEta = 0.35;
  params.backscatterSigma = 5.0 * params.sigma;
  Problem p(barArray(5, 26, 34, 160), params);
  const std::vector<DosedShot> dosed =
      pecCorrect(p, barShots(5, 26, 34, 160));
  ASSERT_EQ(dosed.size(), 5u);
  // The centre bar sees the most background -> the least dose.
  EXPECT_LT(dosed[2].dose, dosed[0].dose);
  EXPECT_LT(dosed[2].dose, dosed[4].dose);
}

TEST(PecTest, DoseBoundsRespected) {
  FractureParams params;
  params.backscatterEta = 0.3;
  params.backscatterSigma = 5.0 * params.sigma;
  Problem p(barArray(6, 26, 40, 150), params);
  PecConfig cfg;
  cfg.doseMin = 0.8;
  cfg.doseMax = 1.2;
  const std::vector<DosedShot> dosed =
      pecCorrect(p, barShots(6, 26, 40, 150), cfg);
  for (const DosedShot& s : dosed) {
    EXPECT_GE(s.dose, 0.8 - 1e-9);
    EXPECT_LE(s.dose, 1.2 + 1e-9);
  }
}

TEST(PecTest, EmptyShotListIsFine) {
  Problem p(bar(0, 40, 40), FractureParams{});
  const PecReport report = runPec(p, {});
  EXPECT_TRUE(report.corrected.empty());
  EXPECT_DOUBLE_EQ(report.doseMin, 1.0);
}

}  // namespace
}  // namespace mbf
