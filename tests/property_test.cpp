// Parameterized property tests: invariants that must hold across sweeps
// of shapes, seeds and parameters.
#include <gtest/gtest.h>

#include "benchgen/ilt_synth.h"
#include "benchgen/known_opt_gen.h"
#include "fracture/model_based_fracturer.h"
#include "fracture/verifier.h"
#include "geometry/contour.h"
#include "geometry/rasterizer.h"

namespace mbf {
namespace {

// ---------------------------------------------------------------------
// Contour / rasterizer round trip over random blobs.
class ContourRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ContourRoundTrip, RasterizeTraceRasterizeIsIdentity) {
  IltSynthConfig cfg;
  cfg.seed = GetParam();
  cfg.numFeatures = 3 + static_cast<int>(GetParam() % 5);
  const Polygon shape = makeIltShape(cfg);
  ASSERT_GE(shape.size(), 4u);

  const Rect box = shape.bbox().inflated(3);
  MaskGrid m(box.width(), box.height(), 0);
  rasterizePolygon(shape, box.bl(), m);
  const Polygon traced = largestOuterContour(m, box.bl());
  MaskGrid m2(box.width(), box.height(), 0);
  rasterizePolygon(traced, box.bl(), m2);
  EXPECT_EQ(m.data(), m2.data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContourRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// ---------------------------------------------------------------------
// Known-optimal generator: the generator shots are always feasible.
struct KnownOptCase {
  std::uint32_t seed;
  int k;
  bool abutting;
};

class KnownOptFeasibility : public ::testing::TestWithParam<KnownOptCase> {};

TEST_P(KnownOptFeasibility, GeneratorShotsAreFeasible) {
  const KnownOptCase c = GetParam();
  const ProximityModel model;
  KnownOptConfig cfg;
  cfg.seed = c.seed;
  cfg.numShots = c.k;
  cfg.abutting = c.abutting;
  const KnownOptShape shape = makeKnownOptShape(cfg, model);
  Problem problem(shape.target, FractureParams{});
  const Violations v = evaluateShots(problem, shape.generatorShots);
  EXPECT_EQ(v.total(), 0)
      << shape.name << " seed=" << c.seed << " k=" << c.k << ": " << v.failOn
      << " on / " << v.failOff << " off";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnownOptFeasibility,
    ::testing::Values(KnownOptCase{101, 3, false}, KnownOptCase{102, 4, true},
                      KnownOptCase{103, 6, false}, KnownOptCase{104, 8, true},
                      KnownOptCase{105, 10, false},
                      KnownOptCase{106, 12, true},
                      KnownOptCase{107, 5, false}, KnownOptCase{108, 7, true},
                      KnownOptCase{109, 9, false},
                      KnownOptCase{110, 11, true}));

// ---------------------------------------------------------------------
// Full pipeline invariants over the ILT suite.
class PipelineInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PipelineInvariants, ShotsValidNearFeasibleAndVerifiable) {
  const IltSynthConfig cfg =
      iltSuiteConfigs()[static_cast<std::size_t>(GetParam())];
  Problem p(makeIltShape(cfg), FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);

  EXPECT_GT(sol.shotCount(), 0);
  for (const Rect& s : sol.shots) {
    // Valid geometry and minimum size.
    EXPECT_TRUE(s.valid());
    EXPECT_GE(s.width(), p.params().lmin);
    EXPECT_GE(s.height(), p.params().lmin);
    // Shots stay in the neighbourhood of the target.
    EXPECT_TRUE(
        s.intersects(p.target().bbox().inflated(p.params().lmin * 3)));
  }
  // Reported stats match an independent verification.
  const Violations v = evaluateShots(p, sol.shots);
  EXPECT_EQ(v.failOn, sol.failOn);
  EXPECT_EQ(v.failOff, sol.failOff);
  // Near-feasibility: < 0.5 % of constrained pixels violated (the paper's
  // hard shapes leave < 0.05 %; synthesized clips are a touch harder).
  const double fraction =
      static_cast<double>(sol.failingPixels()) /
      static_cast<double>(p.numOnPixels() + p.numOffPixels());
  EXPECT_LT(fraction, 0.005) << cfg.name();
}

INSTANTIATE_TEST_SUITE_P(IltSuite, PipelineInvariants,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Parameter sweeps: gamma and Lmin are honoured end to end.
class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, SquareStaysOneShot) {
  FractureParams params;
  params.gamma = GetParam();
  Problem p(Polygon({{0, 0}, {50, 0}, {50, 50}, {0, 50}}), params);
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_TRUE(sol.feasible());
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0));

class LminSweep : public ::testing::TestWithParam<int> {};

TEST_P(LminSweep, MinimumSizeHonored) {
  FractureParams params;
  params.lmin = GetParam();
  const IltSynthConfig cfg = iltSuiteConfigs()[1];
  Problem p(makeIltShape(cfg), params);
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  for (const Rect& s : sol.shots) {
    EXPECT_GE(s.width(), params.lmin);
    EXPECT_GE(s.height(), params.lmin);
  }
}

INSTANTIATE_TEST_SUITE_P(Lmins, LminSweep, ::testing::Values(8, 10, 12, 16));

}  // namespace
}  // namespace mbf
