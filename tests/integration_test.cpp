// End-to-end integration tests: the full ModelBasedFracturer pipeline on
// canonical and generated shapes, compared against the baselines.
#include <gtest/gtest.h>

#include "baselines/eda_proxy.h"
#include "baselines/greedy_set_cover.h"
#include "benchgen/ilt_synth.h"
#include "benchgen/known_opt_gen.h"
#include "bounds/bounds.h"
#include "fracture/model_based_fracturer.h"
#include "fracture/verifier.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

TEST(IntegrationTest, SquareFracturesToOneFeasibleShot) {
  Problem p(square(60), FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_EQ(sol.shotCount(), 1);
  EXPECT_TRUE(sol.feasible());
  EXPECT_EQ(sol.method, "ours");
}

TEST(IntegrationTest, LShapeFracturesToTwoShots) {
  Polygon l({{0, 0}, {90, 0}, {90, 35}, {35, 35}, {35, 90}, {0, 90}});
  Problem p(l, FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_TRUE(sol.feasible());
  EXPECT_LE(sol.shotCount(), 3);
  EXPECT_GE(sol.shotCount(), 2);
}

TEST(IntegrationTest, SolutionVerifiesIndependently) {
  Problem p(square(50), FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  const Violations v = evaluateShots(p, sol.shots);
  EXPECT_EQ(v.failOn, sol.failOn);
  EXPECT_EQ(v.failOff, sol.failOff);
}

TEST(IntegrationTest, AllShotsMeetMinSize) {
  const IltSynthConfig cfg = iltSuiteConfigs()[2];
  Problem p(makeIltShape(cfg), FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  for (const Rect& s : sol.shots) {
    EXPECT_GE(s.width(), p.params().lmin);
    EXPECT_GE(s.height(), p.params().lmin);
  }
}

TEST(IntegrationTest, IltClipsNearFeasibleAndCompetitive) {
  // The paper's headline claim is aggregate (sum over clips), not
  // per-clip: individual simple clips can tie or flip.
  int oursTotal = 0;
  int gscTotal = 0;
  for (const int idx : {1, 2, 4}) {
    const IltSynthConfig cfg =
        iltSuiteConfigs()[static_cast<std::size_t>(idx)];
    Problem p(makeIltShape(cfg), FractureParams{});
    const Solution ours = ModelBasedFracturer{}.fracture(p);
    const Solution gsc = GreedySetCover{}.fracture(p);
    oursTotal += ours.shotCount();
    gscTotal += gsc.shotCount();
    const double fraction =
        static_cast<double>(ours.failingPixels()) /
        static_cast<double>(p.numOnPixels() + p.numOffPixels());
    EXPECT_LT(fraction, 0.005) << cfg.name();
  }
  EXPECT_LE(oursTotal, gscTotal);
}

TEST(IntegrationTest, KnownOptShapeWithinFactorTwo) {
  const ProximityModel model;
  KnownOptConfig cfg;
  cfg.seed = 3;
  cfg.numShots = 5;
  const KnownOptShape shape = makeKnownOptShape(cfg, model);
  Problem p(shape.target, FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  EXPECT_LE(sol.shotCount(), 2 * shape.optimal());
}

TEST(IntegrationTest, LowerBoundBelowAllSolutions) {
  const IltSynthConfig cfg = iltSuiteConfigs()[1];
  Problem p(makeIltShape(cfg), FractureParams{});
  const BoundsEstimate lb = estimateLowerBound(p);
  EXPECT_GE(lb.lower(), 1);
  const Solution ours = ModelBasedFracturer{}.fracture(p);
  EXPECT_LE(lb.lower(), ours.shotCount());
}

TEST(IntegrationTest, ProxyBetweenOursAndGsc) {
  // The paper's ordering on ILT clips: ours <= PROTO-EDA <= GSC holds in
  // aggregate over a couple of clips (individual clips may tie).
  int oursTotal = 0;
  int proxyTotal = 0;
  int gscTotal = 0;
  for (const int idx : {0, 3}) {
    const IltSynthConfig cfg = iltSuiteConfigs()[static_cast<std::size_t>(idx)];
    Problem p(makeIltShape(cfg), FractureParams{});
    oursTotal += ModelBasedFracturer{}.fracture(p).shotCount();
    proxyTotal += EdaProxy{}.fracture(p).shotCount();
    gscTotal += GreedySetCover{}.fracture(p).shotCount();
  }
  EXPECT_LE(oursTotal, proxyTotal);
  EXPECT_LE(proxyTotal, gscTotal);
}

TEST(IntegrationTest, RuntimeIsInteractive) {
  const IltSynthConfig cfg = iltSuiteConfigs()[4];
  Problem p(makeIltShape(cfg), FractureParams{});
  const Solution sol = ModelBasedFracturer{}.fracture(p);
  // The paper reports ~1.4 s/shape average; leave generous slack for CI
  // machines but catch pathological blowups.
  EXPECT_LT(sol.runtimeSeconds, 30.0);
}

}  // namespace
}  // namespace mbf
