// Output-integrity surface (DESIGN.md section 16): SHA-256 vectors, the
// atomic-write protocol and hash sidecars, the sectioned .shots parser,
// and the independent dense checker's bitwise oracle agreement with the
// pipeline Verifier. Labelled `audit`; the asan preset replays it under
// AddressSanitizer + UBSan.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/independent_checker.h"
#include "benchgen/ilt_synth.h"
#include "fracture/problem.h"
#include "fracture/verifier.h"
#include "io/atomic_file.h"
#include "io/poly_io.h"
#include "mdp/layout.h"

namespace mbf {
namespace {

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --- SHA-256 ----------------------------------------------------------

TEST(Sha256Test, Fips180KnownVectors) {
  EXPECT_EQ(sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b"
            "855");
  EXPECT_EQ(sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2001"
            "5ad");
  EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                      "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db0"
            "6c1");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  const std::string msg(200000, 'x');
  Sha256 h;
  // Update sizes straddle the 64-byte block boundary in every phase.
  std::size_t at = 0;
  std::size_t step = 1;
  while (at < msg.size()) {
    const std::size_t n = std::min(step, msg.size() - at);
    h.update(msg.data() + at, n);
    at += n;
    step = step * 3 + 1;
  }
  EXPECT_EQ(h.hexDigest(), sha256Hex(msg));
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(h.hexDigest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112"
            "cd0");
}

// --- Atomic writes and hash sidecars ----------------------------------

TEST(AtomicFileTest, WriteReadRoundTripAndHash) {
  const std::string path = tmpPath("atomic_rt.txt");
  std::string hex;
  ASSERT_TRUE(atomicWriteFile(path, "hello\natomic\n", &hex).ok());
  EXPECT_EQ(hex, sha256Hex("hello\natomic\n"));

  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, "hello\natomic\n");

  std::string fileHex;
  ASSERT_TRUE(sha256File(path, fileHex).ok());
  EXPECT_EQ(fileHex, hex);
}

TEST(AtomicFileTest, OverwriteReplacesWholeFile) {
  const std::string path = tmpPath("atomic_ow.txt");
  ASSERT_TRUE(atomicWriteFile(path, std::string(4096, 'A')).ok());
  ASSERT_TRUE(atomicWriteFile(path, "short").ok());
  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, "short");  // no stale tail from the longer first write
}

TEST(AtomicFileTest, FailurePathLeavesNoFile) {
  const std::string path = "/nonexistent-dir-xyz/atomic.txt";
  EXPECT_FALSE(atomicWriteFile(path, "data").ok());
  std::ifstream is(path);
  EXPECT_FALSE(is.good());
}

TEST(AtomicFileTest, SidecarRoundTripAndVerify) {
  const std::string path = tmpPath("sidecar_rt.bin");
  std::string hex;
  ASSERT_TRUE(atomicWriteFile(path, "payload bytes", &hex).ok());
  ASSERT_TRUE(writeHashSidecar(path, hex).ok());
  EXPECT_EQ(sidecarPathFor(path), path + ".sha256");

  std::string stored;
  ASSERT_TRUE(readHashSidecar(path, stored).ok());
  EXPECT_EQ(stored, hex);
  EXPECT_TRUE(verifyHashSidecar(path).ok());

  // Any byte change must flip the verdict.
  ASSERT_TRUE(atomicWriteFile(path, "payload bytez").ok());
  const Status st = verifyHashSidecar(path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sha256 mismatch"), std::string::npos);
}

TEST(AtomicFileTest, MalformedSidecarIsParseError) {
  const std::string path = tmpPath("sidecar_bad.bin");
  ASSERT_TRUE(atomicWriteFile(path, "x").ok());
  ASSERT_TRUE(atomicWriteFile(sidecarPathFor(path), "not-a-hash\n").ok());
  std::string stored;
  EXPECT_EQ(readHashSidecar(path, stored).code(), StatusCode::kParseError);
}

// --- Sectioned .shots parsing -----------------------------------------

TEST(ParseShotSectionsTest, RoundTripsWriteBatchShots) {
  std::vector<Solution> sols(2);
  sols[0].shots = {{0, 0, 10, 10}, {10, 0, 20, 10}};
  sols[0].failOn = 0;
  sols[0].failOff = 0;
  sols[1].shots = {{5, 5, 30, 30}};
  sols[1].failOn = 2;
  sols[1].failOff = 1;
  sols[1].degraded = true;
  std::ostringstream os;
  writeBatchShots(os, sols);

  std::vector<ShotSection> sections;
  ASSERT_TRUE(parseShotSections(os.str(), sections).ok());
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].index, 0);
  EXPECT_EQ(sections[0].claimedShots, 2);
  EXPECT_EQ(sections[0].claimedFailingPx, 0);
  EXPECT_FALSE(sections[0].claimedDegraded);
  EXPECT_EQ(sections[0].shots, sols[0].shots);
  EXPECT_EQ(sections[1].index, 1);
  EXPECT_EQ(sections[1].claimedShots, 1);
  EXPECT_EQ(sections[1].claimedFailingPx, 3);
  EXPECT_TRUE(sections[1].claimedDegraded);
  EXPECT_EQ(sections[1].shots, sols[1].shots);
}

TEST(ParseShotSectionsTest, RejectsMalformedContent) {
  std::vector<ShotSection> sections;
  // A shot line before any section header.
  Status st = parseShotSections("0 0 10 10\n", sections);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  // A garbage content line inside a section, with its line number.
  sections.clear();
  st = parseShotSections("# shape 0: 1 shots, 0 failing px\nnot a shot\n",
                         sections);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("2"), std::string::npos);
}

TEST(ParseShotSectionsTest, UnderfilledSectionParsesFine) {
  // Fewer shots than the header claims is the AUDIT's finding to make,
  // not a parse failure — the parser must hand the mismatch through.
  std::vector<ShotSection> sections;
  ASSERT_TRUE(parseShotSections("# shape 0: 3 shots, 0 failing px\n"
                                "0 0 10 10\n",
                                sections)
                  .ok());
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].claimedShots, 3);
  EXPECT_EQ(sections[0].shots.size(), 1u);
}

// --- Oracle agreement: dense checker vs pipeline Verifier -------------

LayoutShape iltLayoutShape(unsigned seed) {
  IltSynthConfig cfg;
  cfg.seed = seed;
  LayoutShape shape;
  shape.rings.push_back(makeIltShape(cfg));
  return shape;
}

TEST(DenseOracleTest, BitwiseAgreementWithVerifierAcrossThreads) {
  // Randomized realistic shapes, fractured by the real pipeline; the
  // independent gather evaluator must agree with the scatter-built
  // Verifier BIT FOR BIT — counts and cost — at every thread count.
  for (const unsigned seed : {101u, 202u, 303u, 404u}) {
    const LayoutShape shape = iltLayoutShape(seed);
    FractureParams params;
    params.nmax = 400;  // enough refinement to leave nontrivial shots
    const Solution sol = fractureShape(shape, params, Method::kOurs);
    ASSERT_FALSE(sol.shots.empty()) << "seed " << seed;

    for (const int threads : {1, 4, 8}) {
      FractureParams tp = params;
      tp.numThreads = threads;
      Problem problem(shape.rings, tp);
      Verifier verifier(problem);
      verifier.setShots(sol.shots);
      const Violations expected = verifier.violations();

      const DenseViolations dense = denseViolations(problem, sol.shots);
      EXPECT_EQ(dense.failOn, expected.failOn) << "seed " << seed;
      EXPECT_EQ(dense.failOff, expected.failOff) << "seed " << seed;
      EXPECT_EQ(dense.cost, expected.cost)  // bitwise, not a tolerance
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(DenseOracleTest, AgreesWithSolutionClaims) {
  // writeStats stamps the Solution with the Verifier's numbers; the
  // dense checker must reproduce those claims exactly.
  const LayoutShape shape = iltLayoutShape(777u);
  FractureParams params;
  params.nmax = 400;
  const Solution sol = fractureShape(shape, params, Method::kOurs);
  Problem problem(shape.rings, params);
  const DenseViolations dense = denseViolations(problem, sol.shots);
  EXPECT_EQ(dense.failOn, sol.failOn);
  EXPECT_EQ(dense.failOff, sol.failOff);
  EXPECT_EQ(dense.cost, sol.cost);
}

TEST(DenseOracleTest, DetectsTamperedShot) {
  // Tampering that drops real dose must move the dense re-evaluation.
  // (Tampering that only ADDS interior dose can be violation-neutral —
  // that class is caught by the artifact hash, not the re-check.)
  const LayoutShape shape = iltLayoutShape(555u);
  FractureParams params;
  params.nmax = 400;
  const Solution sol = fractureShape(shape, params, Method::kOurs);
  ASSERT_FALSE(sol.shots.empty());
  Problem problem(shape.rings, params);
  const DenseViolations before = denseViolations(problem, sol.shots);
  // The shots are load-bearing: without them every Pon pixel fails.
  ASSERT_LT(before.failOn, problem.numOnPixels());
  const DenseViolations emptied = denseViolations(problem, {});
  EXPECT_EQ(emptied.failOn, problem.numOnPixels());
  EXPECT_NE(emptied.failOn, before.failOn);

  // Dropping a single shot from the section: at least one shot in a
  // refined solution is individually load-bearing.
  bool detected = false;
  for (std::size_t i = 0; i < sol.shots.size() && !detected; ++i) {
    std::vector<Rect> tampered = sol.shots;
    tampered.erase(tampered.begin() + static_cast<std::ptrdiff_t>(i));
    const DenseViolations after = denseViolations(problem, tampered);
    detected = after.failOn != before.failOn ||
               after.failOff != before.failOff || after.cost != before.cost;
  }
  EXPECT_TRUE(detected);
}

// --- Metamorphic: whole-pixel translation -----------------------------

TEST(MetamorphicTest, WholePixelTranslationTranslatesShots) {
  // Fracturing a translated copy of a shape must yield exactly the
  // translated shots (the grid origin follows the bbox), and the dense
  // evaluation must be bitwise invariant under the translation.
  const Point delta{4000, 2000};
  for (const unsigned seed : {11u, 22u}) {
    const LayoutShape shape = iltLayoutShape(seed);
    LayoutShape moved = shape;
    for (Polygon& ring : moved.rings) ring.translate(delta);

    FractureParams params;
    params.nmax = 300;
    const Solution base = fractureShape(shape, params, Method::kOurs);
    const Solution shifted = fractureShape(moved, params, Method::kOurs);

    ASSERT_EQ(base.shots.size(), shifted.shots.size()) << "seed " << seed;
    for (std::size_t i = 0; i < base.shots.size(); ++i) {
      EXPECT_EQ(base.shots[i].x0 + delta.x, shifted.shots[i].x0);
      EXPECT_EQ(base.shots[i].y0 + delta.y, shifted.shots[i].y0);
      EXPECT_EQ(base.shots[i].x1 + delta.x, shifted.shots[i].x1);
      EXPECT_EQ(base.shots[i].y1 + delta.y, shifted.shots[i].y1);
    }

    Problem pBase(shape.rings, params);
    Problem pMoved(moved.rings, params);
    const DenseViolations a = denseViolations(pBase, base.shots);
    const DenseViolations b = denseViolations(pMoved, shifted.shots);
    EXPECT_EQ(a.failOn, b.failOn);
    EXPECT_EQ(a.failOff, b.failOff);
    EXPECT_EQ(a.cost, b.cost);
  }
}

// --- auditShotSections end to end -------------------------------------

TEST(AuditSectionsTest, CleanBatchHasNoFindings) {
  std::vector<LayoutShape> shapes = {iltLayoutShape(31u), iltLayoutShape(32u)};
  BatchConfig config;
  config.params.nmax = 300;
  const BatchResult result = fractureLayout(shapes, config);

  std::ostringstream os;
  writeBatchShots(os, result.solutions);
  std::vector<ShotSection> sections;
  ASSERT_TRUE(parseShotSections(os.str(), sections).ok());

  std::vector<ShapeExpectation> expectations(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Solution& sol = result.solutions[i];
    expectations[i] = {sol.method,       sol.failOn, sol.failOff,
                       sol.cost,         sol.degraded,
                       /*completed=*/true,
                       /*exactCost=*/true};
  }
  const AuditReport report = auditShotSections(
      shapes, config.params, sections, expectations, /*threads=*/2);
  EXPECT_TRUE(report.clean()) << report.str();
  EXPECT_EQ(report.shapesAudited, 2);
}

TEST(AuditSectionsTest, FlagsTamperedClaimsAndShots) {
  std::vector<LayoutShape> shapes = {iltLayoutShape(41u)};
  BatchConfig config;
  config.params.nmax = 300;
  const BatchResult result = fractureLayout(shapes, config);

  std::ostringstream os;
  writeBatchShots(os, result.solutions);
  std::vector<ShotSection> sections;
  ASSERT_TRUE(parseShotSections(os.str(), sections).ok());

  std::vector<ShapeExpectation> expectations(1);
  const Solution& sol = result.solutions[0];
  expectations[0] = {sol.method, sol.failOn, sol.failOff, sol.cost,
                     sol.degraded, true, true};

  // 1. Drop a shot: claimed count and dose field both disagree.
  auto dropped = sections;
  ASSERT_FALSE(dropped[0].shots.empty());
  dropped[0].shots.pop_back();
  EXPECT_FALSE(auditShotSections(shapes, config.params, dropped,
                                 expectations, 1)
                   .clean());

  // 2. Lie about the failing-pixel claim only.
  auto lied = sections;
  lied[0].claimedFailingPx += 5;
  EXPECT_FALSE(
      auditShotSections(shapes, config.params, lied, expectations, 1)
          .clean());

  // 3. Expectation disagrees with reality (manifest tamper).
  auto badExp = expectations;
  badExp[0].failOn += 1;
  EXPECT_FALSE(
      auditShotSections(shapes, config.params, sections, badExp, 1)
          .clean());

  // Control: untouched data stays clean.
  EXPECT_TRUE(auditShotSections(shapes, config.params, sections,
                                expectations, 1)
                  .clean());
}

TEST(AuditSectionsTest, IncompleteShapeMustBeEmpty) {
  std::vector<LayoutShape> shapes = {iltLayoutShape(51u)};
  FractureParams params;
  params.nmax = 300;
  const Solution sol = fractureShape(shapes[0], params, Method::kOurs);
  ASSERT_FALSE(sol.shots.empty());

  std::vector<Solution> sols = {sol};
  std::ostringstream os;
  writeBatchShots(os, sols);
  std::vector<ShotSection> sections;
  ASSERT_TRUE(parseShotSections(os.str(), sections).ok());

  // The run claims this shape failed/was interrupted (completed=false):
  // a NON-empty section is a finding.
  std::vector<ShapeExpectation> expectations(1);
  expectations[0] = {"empty", 0, 0, 0.0, false, /*completed=*/false, true};
  EXPECT_FALSE(
      auditShotSections(shapes, params, sections, expectations, 1).clean());
}

}  // namespace
}  // namespace mbf
