// Tests for the simulated-annealing refiner extension.
#include <gtest/gtest.h>

#include "extensions/anneal.h"
#include "fracture/coloring_fracturer.h"
#include "fracture/verifier.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

TEST(AnnealTest, FixesUndersizedSquareShot) {
  Problem p(square(40), FractureParams{});
  AnnealRefiner r(p);
  const Solution sol = r.refine({{6, 6, 34, 34}});
  EXPECT_TRUE(sol.feasible()) << sol.failOn << "/" << sol.failOff;
  EXPECT_EQ(sol.shotCount(), 1);
}

TEST(AnnealTest, Deterministic) {
  Problem p(square(40), FractureParams{});
  AnnealConfig cfg;
  cfg.seed = 7;
  cfg.iterations = 5000;
  AnnealRefiner r(p, cfg);
  const Solution a = r.refine({{4, 4, 36, 36}});
  const Solution b = r.refine({{4, 4, 36, 36}});
  EXPECT_EQ(a.shots, b.shots);
}

TEST(AnnealTest, SeedChangesTrajectoryNotValidity) {
  Problem p(square(50), FractureParams{});
  AnnealConfig c1;
  c1.seed = 1;
  AnnealConfig c2;
  c2.seed = 2;
  const Solution a = AnnealRefiner(p, c1).refine({{5, 5, 45, 45}});
  const Solution b = AnnealRefiner(p, c2).refine({{5, 5, 45, 45}});
  EXPECT_TRUE(a.feasible());
  EXPECT_TRUE(b.feasible());
}

TEST(AnnealTest, RespectsMinShotSize) {
  Problem p(square(20), FractureParams{});
  AnnealConfig cfg;
  cfg.iterations = 3000;
  AnnealRefiner r(p, cfg);
  const Solution sol = r.refine({{2, 2, 16, 16}});
  for (const Rect& s : sol.shots) {
    EXPECT_GE(s.width(), p.params().lmin);
    EXPECT_GE(s.height(), p.params().lmin);
  }
}

TEST(AnnealTest, NeverWorseThanStart) {
  // The best-state tracking guarantees the result is at least as good as
  // the initial solution.
  Polygon l({{0, 0}, {80, 0}, {80, 30}, {30, 30}, {30, 80}, {0, 80}});
  Problem p(l, FractureParams{});
  const ColoringArtifacts art = ColoringFracturer{}.fractureWithArtifacts(p);
  Verifier v(p);
  v.setShots(art.shots);
  const Violations start = v.violations();
  AnnealConfig cfg;
  cfg.iterations = 8000;
  const Solution sol = AnnealRefiner(p, cfg).refine(art.shots);
  EXPECT_LE(sol.failingPixels(), start.total());
}

TEST(AnnealTest, EmptyInputIsHarmless) {
  Problem p(square(30), FractureParams{});
  const Solution sol = AnnealRefiner(p).refine({});
  EXPECT_EQ(sol.shotCount(), 0);
}

}  // namespace
}  // namespace mbf
