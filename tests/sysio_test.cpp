// Chaos-layer unit tests (DESIGN.md section 18): the injectable syscall
// shim itself (fault-spec parsing, exact-index firing, sticky faults,
// short writes, EINTR storms), the degrade-don't-die contracts built on
// it (atomic writes leave destinations intact under ENOSPC, missing
// files are kNotFound while a sick filesystem is kIoError, the journal's
// checked close, cell-cache self-disable and quota eviction), and the
// stale-temp sweeper.
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.h"
#include "mdp/cell_cache.h"
#include "support/journal.h"
#include "support/sysio.h"

namespace mbf {
namespace {

/// Every test disarms on exit so a failing assertion cannot leak an
/// armed fault schedule into the next test.
class SysioTest : public ::testing::Test {
 protected:
  void TearDown() override { sysio::disarm(); }

  std::string tempDir() {
    std::string dir = ::testing::TempDir() + "sysio_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    std::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'").c_str());
    return dir;
  }

  bool exists(const std::string& path) {
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0;
  }

  int countTempFiles(const std::string& dir) {
    std::string cmd = "ls '" + dir + "' | grep -c '\\.tmp\\.' || true";
    FILE* p = ::popen(cmd.c_str(), "r");
    if (p == nullptr) return -1;
    int n = -1;
    if (std::fscanf(p, "%d", &n) != 1) n = -1;
    ::pclose(p);
    return n;
  }
};

TEST_F(SysioTest, ParseAcceptsDocumentedSpellings) {
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@17:enospc!", spec));
  EXPECT_EQ(spec.op, sysio::Op::kWrite);
  EXPECT_EQ(spec.failAt, 17u);
  EXPECT_EQ(spec.mode, sysio::FaultMode::kErrno);
  EXPECT_EQ(spec.err, ENOSPC);
  EXPECT_TRUE(spec.sticky);

  ASSERT_TRUE(sysio::parseFaultSpec("fsync@3:eio", spec));
  EXPECT_EQ(spec.op, sysio::Op::kFsync);
  EXPECT_EQ(spec.err, EIO);
  EXPECT_FALSE(spec.sticky);

  ASSERT_TRUE(sysio::parseFaultSpec("any@40:eintrx8", spec));
  EXPECT_EQ(spec.op, sysio::Op::kAny);
  EXPECT_EQ(spec.mode, sysio::FaultMode::kEintrStorm);
  EXPECT_EQ(spec.stormLength, 8);

  ASSERT_TRUE(sysio::parseFaultSpec("write@2:short", spec));
  EXPECT_EQ(spec.mode, sysio::FaultMode::kShortWrite);

  ASSERT_TRUE(sysio::parseFaultSpec("open@1:enoent", spec));
  EXPECT_EQ(spec.err, ENOENT);
  ASSERT_TRUE(sysio::parseFaultSpec("rename@2:erofs", spec));
  EXPECT_EQ(spec.err, EROFS);
  ASSERT_TRUE(sysio::parseFaultSpec("mkdir@1:edquot", spec));
  EXPECT_EQ(spec.err, EDQUOT);
  ASSERT_TRUE(sysio::parseFaultSpec("close@5:eio", spec));
  EXPECT_EQ(spec.op, sysio::Op::kClose);
  ASSERT_TRUE(sysio::parseFaultSpec("read@4:eintr", spec));
  EXPECT_EQ(spec.err, EINTR);
  EXPECT_EQ(spec.mode, sysio::FaultMode::kErrno);
}

TEST_F(SysioTest, ParseRejectsMalformedSpecs) {
  sysio::FaultSpec spec;
  EXPECT_FALSE(sysio::parseFaultSpec("", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("write@0:enospc", spec));  // 1-based
  EXPECT_FALSE(sysio::parseFaultSpec("write@x:enospc", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("bogus@1:eio", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("write@1:badfault", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("read@1:short", spec));  // write-only
  EXPECT_FALSE(sysio::parseFaultSpec("write@1:eintrx0", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("write@1:eintrx2!", spec));  // no sticky
  EXPECT_FALSE(sysio::parseFaultSpec("write@1", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("@1:eio", spec));
  EXPECT_FALSE(sysio::parseFaultSpec("write:enospc", spec));
}

TEST_F(SysioTest, DisarmedWrappersPassThrough) {
  EXPECT_FALSE(sysio::armed());
  const std::string dir = tempDir();
  const std::string path = dir + "/plain.txt";
  const int fd = sysio::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(sysio::write(fd, "hello", 5), 5);
  EXPECT_EQ(sysio::fsync(fd), 0);
  EXPECT_EQ(sysio::close(fd), 0);
  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, "hello");
  EXPECT_EQ(sysio::unlink(path.c_str()), 0);
  EXPECT_FALSE(exists(path));
}

TEST_F(SysioTest, ErrnoFaultFiresOnExactIndexOnce) {
  const std::string dir = tempDir();
  const int fd =
      sysio::open((dir + "/f").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@2:enospc", spec));
  sysio::arm(spec);
  EXPECT_EQ(sysio::write(fd, "a", 1), 1);  // #1 passes
  errno = 0;
  EXPECT_EQ(sysio::write(fd, "b", 1), -1);  // #2 faults
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(sysio::write(fd, "c", 1), 1);  // one-shot: #3 passes
  sysio::disarm();
  ASSERT_EQ(::close(fd), 0);
}

TEST_F(SysioTest, StickyFaultKeepsFiring) {
  const std::string dir = tempDir();
  const int fd =
      sysio::open((dir + "/f").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@1:eio!", spec));
  sysio::arm(spec);
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(sysio::write(fd, "x", 1), -1);
    EXPECT_EQ(errno, EIO);
  }
  sysio::disarm();
  ASSERT_EQ(::close(fd), 0);
}

TEST_F(SysioTest, AtomicWriteEnospcLeavesDestinationIntact) {
  const std::string dir = tempDir();
  const std::string path = dir + "/artifact.bin";
  ASSERT_TRUE(atomicWriteFile(path, "old content").ok());

  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@1:enospc!", spec));
  sysio::arm(spec);
  const Status st = atomicWriteFile(path, "NEW CONTENT THAT MUST NOT LAND");
  sysio::disarm();
  EXPECT_EQ(st.code(), StatusCode::kIoError);

  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, "old content");         // destination untouched
  EXPECT_EQ(countTempFiles(dir), 0);      // temp unlinked on failure
}

TEST_F(SysioTest, ShortWriteIsTransparentToAtomicWrite) {
  const std::string dir = tempDir();
  const std::string path = dir + "/artifact.bin";
  const std::string payload(4096, 'q');
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@1:short", spec));
  sysio::arm(spec);
  ASSERT_TRUE(atomicWriteFile(path, payload).ok());
  sysio::disarm();
  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, payload);  // the retry loop resumed the unwritten tail
}

TEST_F(SysioTest, EintrStormIsAbsorbed) {
  const std::string dir = tempDir();
  const std::string path = dir + "/artifact.bin";
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@1:eintrx4", spec));
  sysio::arm(spec);
  ASSERT_TRUE(atomicWriteFile(path, "survives the storm").ok());
  sysio::disarm();
  std::string back;
  ASSERT_TRUE(readFileToString(path, back).ok());
  EXPECT_EQ(back, "survives the storm");
}

TEST_F(SysioTest, MissingFileIsNotFoundNotIoError) {
  const std::string dir = tempDir();
  std::string out;
  const Status st = readFileToString(dir + "/absent", out);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_TRUE(out.empty());

  std::string hex;
  EXPECT_EQ(readHashSidecar(dir + "/absent", hex).code(), StatusCode::kNotFound);
}

TEST_F(SysioTest, ReadFaultIsIoErrorNotNotFound) {
  const std::string dir = tempDir();
  const std::string path = dir + "/present";
  ASSERT_TRUE(atomicWriteFile(path, "bytes").ok());

  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("read@1:eio!", spec));
  sysio::arm(spec);
  std::string out;
  const Status st = readFileToString(path, out);
  sysio::disarm();
  // The file exists; the filesystem is sick. This must never look like
  // a cache miss or an optional sidecar being absent.
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(SysioTest, InjectedEnoentOnOpenStillMapsToNotFound) {
  const std::string dir = tempDir();
  const std::string path = dir + "/present";
  ASSERT_TRUE(atomicWriteFile(path, "bytes").ok());
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("open@1:enoent", spec));
  sysio::arm(spec);
  std::string out;
  const Status st = readFileToString(path, out);
  sysio::disarm();
  EXPECT_EQ(st.code(), StatusCode::kNotFound);  // classified by errno
}

TEST_F(SysioTest, SweepRemovesDeadWriterTempsOnly) {
  const std::string dir = tempDir();
  // A pid that provably no longer exists: a child that already exited
  // and was reaped (the pid cannot be recycled while we hold the reap).
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(dead, &wstatus, 0), dead);

  const std::string deadTemp =
      dir + "/art.shots.tmp." + std::to_string(dead);
  const std::string liveTemp =
      dir + "/art.shots.tmp." + std::to_string(::getpid());
  const std::string plain = dir + "/plain.txt";
  const std::string badPid = dir + "/x.tmp.notapid";
  for (const std::string& p : {deadTemp, liveTemp, plain, badPid}) {
    std::ofstream(p) << "debris";
  }

  EXPECT_EQ(sweepStaleTempFiles(dir), 1);
  EXPECT_FALSE(exists(deadTemp));  // dead writer: removed
  EXPECT_TRUE(exists(liveTemp));   // we are alive: kept
  EXPECT_TRUE(exists(plain));      // not a temp: kept
  EXPECT_TRUE(exists(badPid));     // unparseable pid: kept

  EXPECT_EQ(sweepStaleTempFiles(dir + "/no-such-dir"), 0);
}

// --- Advisory liveness protocol (DESIGN.md section 19) -------------------

/// A fake "concurrent process": a lock file under an arbitrary pid,
/// flock'd LOCK_EX on its own descriptor. flock attaches to the open
/// file description, so probes from this same process (which open their
/// own descriptor) correctly read EWOULDBLOCK -> live.
class FakeLiveWriter {
 public:
  FakeLiveWriter(const std::string& dir, long pid) {
    path_ = dir + "/.mbf-live." + std::to_string(pid) + ".lck";
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~FakeLiveWriter() { die(); }
  bool alive() const { return fd_ >= 0; }
  void note(const std::string& token) {
    const std::string line = token + "\n";
    (void)!::write(fd_, line.data(), line.size());
  }
  /// Releases the flock (keeps the file): the "process" crashed.
  void die() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  std::string path_;
  int fd_ = -1;
};

TEST_F(SysioTest, SweepSparesLockHeldWritersRegardlessOfPid) {
  const std::string dir = tempDir();
  // A pid far beyond any real process: the legacy kill(pid, 0) probe
  // reads ESRCH ("dead") — the held lock must overrule it.
  const long ghost = 3999999;
  FakeLiveWriter writer(dir, ghost);
  ASSERT_TRUE(writer.alive());
  const std::string temp = dir + "/out.shots.tmp." + std::to_string(ghost);
  std::ofstream(temp) << "in-flight bytes";

  EXPECT_EQ(sweepStaleTempFiles(dir), 0);
  EXPECT_TRUE(exists(temp)) << "live-locked writer's temp must survive";

  // The writer dies (lock released, file left behind — a crash never
  // unlinks): now the temp AND the stale lock file are provably orphaned.
  writer.die();
  EXPECT_EQ(sweepStaleTempFiles(dir), 1);
  EXPECT_FALSE(exists(temp));
  EXPECT_FALSE(exists(dir + "/.mbf-live." + std::to_string(ghost) + ".lck"));
}

TEST_F(SysioTest, SweepRemovesTempOfAlivePidWhoseLockIsUnheld) {
  const std::string dir = tempDir();
  // The PID-reuse hazard, inverted: OUR pid is alive (kill(pid, 0)
  // succeeds), but the lock file under it is unheld — so the original
  // writer of these temps is dead and our pid merely recycled its
  // number. The protocol must trust the lock, not the pid.
  const long self = static_cast<long>(::getpid());
  std::ofstream(dir + "/.mbf-live." + std::to_string(self) + ".lck")
      << "stale tokens\n";
  const std::string temp = dir + "/out.shots.tmp." + std::to_string(self);
  std::ofstream(temp) << "orphan bytes";

  EXPECT_EQ(sweepStaleTempFiles(dir), 1);
  EXPECT_FALSE(exists(temp))
      << "unheld lock proves the writer dead even though the pid is live";
}

TEST_F(SysioTest, ProbeAndNotedTokensFollowTheLockLifecycle) {
  const std::string dir = tempDir();
  const long self = static_cast<long>(::getpid());
  EXPECT_EQ(probeWriterLiveness(dir, self), WriterLiveness::kUnknown);

  DirLivenessLock lock;
  lock.acquire(dir);
  ASSERT_TRUE(lock.held());
  EXPECT_EQ(probeWriterLiveness(dir, self), WriterLiveness::kLive);
  lock.note("cafe01");
  lock.note("beef02");
  const std::vector<std::string> tokens = liveNotedTokens(dir);
  EXPECT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "cafe01") !=
              tokens.end());
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "beef02") !=
              tokens.end());

  lock.release();
  EXPECT_FALSE(lock.held());
  // release() unlinks: a later probe reads "no such writer", not "dead".
  EXPECT_EQ(probeWriterLiveness(dir, self), WriterLiveness::kUnknown);
  EXPECT_TRUE(liveNotedTokens(dir).empty());
}

TEST_F(SysioTest, StaleLivenessLocksAreSweptDeadOnesOnly) {
  const std::string dir = tempDir();
  FakeLiveWriter live(dir, 3999998);
  ASSERT_TRUE(live.alive());
  std::ofstream(dir + "/.mbf-live.3999997.lck") << "tokens of the dead\n";
  EXPECT_EQ(probeWriterLiveness(dir, 3999997), WriterLiveness::kDead);
  EXPECT_EQ(probeWriterLiveness(dir, 3999998), WriterLiveness::kLive);
  EXPECT_EQ(sweepStaleLivenessLocks(dir), 1);
  EXPECT_FALSE(exists(dir + "/.mbf-live.3999997.lck"));
  EXPECT_TRUE(exists(dir + "/.mbf-live.3999998.lck"));
}

TEST_F(SysioTest, CloseCheckedSurfacesEioUnderEachRecord) {
  const std::string dir = tempDir();
  JournalWriter writer;
  ASSERT_TRUE(
      writer.create(dir + "/j", "meta", JournalFsync::kEachRecord).ok());
  ASSERT_TRUE(writer.append("record").ok());

  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("close@1:eio", spec));
  sysio::arm(spec);
  const Status st = writer.closeChecked();
  sysio::disarm();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(writer.isOpen());  // the fd is gone either way
  EXPECT_TRUE(writer.closeChecked().ok());  // already closed: kOk
}

TEST_F(SysioTest, CloseCheckedSwallowsEioUnderNonePolicy) {
  const std::string dir = tempDir();
  JournalWriter writer;
  ASSERT_TRUE(writer.create(dir + "/j", "meta", JournalFsync::kNone).ok());
  ASSERT_TRUE(writer.append("record").ok());
  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("close@1:eio", spec));
  sysio::arm(spec);
  // kNone only ever promised page-cache durability; a close error adds
  // nothing actionable and must not fail runs that opted out of fsync.
  EXPECT_TRUE(writer.closeChecked().ok());
  sysio::disarm();
}

CellFracture trivialCell() {
  CellFracture cell;
  Solution sol;
  sol.shots = {Rect{0, 0, 10, 10}};
  cell.solutions.push_back(sol);
  cell.reports.emplace_back();
  return cell;
}

TEST_F(SysioTest, CellCacheDisablesItselfAfterStoreFailure) {
  const std::string dir = tempDir() + "/cache";
  CellFractureCache cache(dir);
  ASSERT_TRUE(cache.prepare().ok());

  sysio::FaultSpec spec;
  ASSERT_TRUE(sysio::parseFaultSpec("write@1:enospc!", spec));
  sysio::arm(spec);
  const Status st = cache.store("deadbeef", trivialCell());
  sysio::disarm();

  EXPECT_EQ(st.code(), StatusCode::kIoError);  // returned once, for the log
  EXPECT_TRUE(cache.disabled());
  EXPECT_EQ(cache.stats().ioErrors, 1);
  EXPECT_EQ(cache.stats().stored, 0);
  EXPECT_FALSE(exists(cache.pathFor("deadbeef")));  // no half-written entry
  EXPECT_EQ(countTempFiles(dir), 0);

  // Disabled cache: stores are silent no-ops, loads are plain misses.
  EXPECT_TRUE(cache.store("cafef00d", trivialCell()).ok());
  EXPECT_EQ(cache.stats().stored, 0);
  CellFracture out;
  EXPECT_EQ(cache.load("deadbeef", out), CellFractureCache::Lookup::kMiss);
  EXPECT_EQ(cache.stats().ioErrors, 1);  // counted once, not per op
}

TEST_F(SysioTest, CellCacheQuotaEvictsOnlyUntouchedEntries) {
  const std::string dir = tempDir() + "/cache";
  // A previous run populates two entries.
  {
    CellFractureCache warmup(dir);
    ASSERT_TRUE(warmup.prepare().ok());
    ASSERT_TRUE(warmup.store("oldkey1", trivialCell()).ok());
    ASSERT_TRUE(warmup.store("oldkey2", trivialCell()).ok());
  }
  // This run stores one entry under an absurdly small quota: both cold
  // entries are evictable, the entry this run touched is not.
  CellFractureCache cache(dir);
  ASSERT_TRUE(cache.prepare().ok());
  cache.setQuotaBytes(1);
  ASSERT_TRUE(cache.store("newkey", trivialCell()).ok());

  EXPECT_EQ(cache.stats().evicted, 2);
  EXPECT_FALSE(exists(cache.pathFor("oldkey1")));
  EXPECT_FALSE(exists(cache.pathFor("oldkey2")));
  EXPECT_FALSE(exists(sidecarPathFor(cache.pathFor("oldkey1"))));
  EXPECT_TRUE(exists(cache.pathFor("newkey")));  // touched: never evicted
  EXPECT_TRUE(exists(sidecarPathFor(cache.pathFor("newkey"))));

  // The surviving entry is still a verified hit for a fresh cache.
  CellFractureCache reread(dir);
  ASSERT_TRUE(reread.prepare().ok());
  CellFracture out;
  EXPECT_EQ(reread.load("newkey", out), CellFractureCache::Lookup::kHit);
}

}  // namespace
}  // namespace mbf
