// Tests for the journaled batch layer (mdp/checkpoint, DESIGN.md section
// 14): ShapeRecord serialization round trips bitwise, a journaled run
// matches a plain run exactly, and resuming from a partial journal at
// any thread count reproduces the uninterrupted output byte for byte.
// The process-level half of the contract (SIGKILL mid-run, supervisor
// isolation) lives in tests/crash_drill_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/ilt_synth.h"
#include "io/poly_io.h"
#include "mdp/checkpoint.h"
#include "mdp/layout.h"
#include "support/fault_injector.h"
#include "support/journal.h"

namespace mbf {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("checkpoint_test_" + name + ".tmp") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Polygon square(int size, Point at = {0, 0}) {
  return Polygon({{at.x, at.y},
                  {at.x + size, at.y},
                  {at.x + size, at.y + size},
                  {at.x, at.y + size}});
}

/// A small mixed layout: synthesized ILT shapes so solutions carry
/// non-trivial doubles, plus plain squares.
std::vector<LayoutShape> testLayout(int n) {
  std::vector<LayoutShape> shapes;
  for (int i = 0; i < n; ++i) {
    LayoutShape s;
    if (i % 3 == 0) {
      s.rings.push_back(square(40, {i * 100, 0}));
    } else {
      IltSynthConfig cfg;
      cfg.seed = 900 + static_cast<unsigned>(i);
      s.rings.push_back(makeIltShape(cfg));
    }
    shapes.push_back(s);
  }
  return shapes;
}

std::string shotsText(const BatchResult& result) {
  std::ostringstream os;
  writeBatchShots(os, result.solutions);
  return os.str();
}

/// Result equality across two independent runs: everything the batch
/// computed must match bitwise — except runtimeSeconds, which is wall
/// clock, differs between any two fresh fractures of the same shape, and
/// is not part of the .shots output the byte-identity contract covers.
void expectSameSolution(const Solution& a, const Solution& b,
                        std::size_t i) {
  EXPECT_EQ(a.shots, b.shots) << "shape " << i;
  EXPECT_EQ(a.failOn, b.failOn) << "shape " << i;
  EXPECT_EQ(a.failOff, b.failOff) << "shape " << i;
  EXPECT_EQ(a.cost, b.cost) << "shape " << i;  // bitwise, no tolerance
  EXPECT_EQ(a.method, b.method) << "shape " << i;
  EXPECT_EQ(a.degraded, b.degraded) << "shape " << i;
}

void expectSameBatch(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    expectSameSolution(a.solutions[i], b.solutions[i], i);
    EXPECT_EQ(a.reports[i].degraded, b.reports[i].degraded) << "shape " << i;
    EXPECT_EQ(a.reports[i].status.code(), b.reports[i].status.code())
        << "shape " << i;
  }
  EXPECT_EQ(a.totalShots, b.totalShots);
  EXPECT_EQ(a.totalFailingPixels, b.totalFailingPixels);
  EXPECT_EQ(a.degradedShapes, b.degradedShapes);
  EXPECT_EQ(shotsText(a), shotsText(b));
}

// --- ShapeRecord serialization -----------------------------------------

TEST(ShapeRecordTest, RoundTripsBitwise) {
  ShapeRecord rec;
  rec.shapeIndex = 42;
  rec.solution.shots = {Rect(0, 0, 10, 10), Rect(-5, 3, 7, 9)};
  rec.solution.failOn = 3;
  rec.solution.failOff = 1;
  rec.solution.cost = 0.1 + 0.2;  // not exactly 0.3 — bitwise must hold
  rec.solution.runtimeSeconds = 1.25e-3;
  rec.solution.method = "ours";
  rec.solution.degraded = true;
  rec.report.degraded = true;
  rec.report.status =
      Status(StatusCode::kBudgetExceeded, "shape time budget").withShape(42);

  ShapeRecord out;
  ASSERT_TRUE(decodeShapeRecord(encodeShapeRecord(rec), out).ok());
  EXPECT_EQ(out.shapeIndex, 42);
  EXPECT_EQ(out.solution, rec.solution);
  EXPECT_EQ(out.report.degraded, true);
  EXPECT_EQ(out.report.status.code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(out.report.status.message(), "shape time budget");
  EXPECT_EQ(out.report.status.shapeIndex(), 42);
}

TEST(ShapeRecordTest, RejectsTruncatedAndTrailingBytes) {
  ShapeRecord rec;
  rec.shapeIndex = 1;
  rec.solution.shots = {Rect(0, 0, 4, 4)};
  const std::string bytes = encodeShapeRecord(rec);
  ShapeRecord out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        decodeShapeRecord(std::string_view(bytes).substr(0, cut), out).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(decodeShapeRecord(bytes + "x", out).ok());
}

// --- CellRecord serialization -------------------------------------------

CellRecord sampleCellRecord() {
  CellRecord rec;
  rec.cellIndex = 7;
  rec.key = std::string(64, 'a');
  for (int i = 0; i < 3; ++i) {
    Solution sol;
    sol.shots = {Rect(i, 0, i + 10, 10), Rect(-5, i, 7, i + 9)};
    sol.failOn = i;
    sol.cost = 0.1 + 0.2 * i;  // inexact doubles: bitwise must hold
    sol.runtimeSeconds = 1.25e-3 * (i + 1);
    sol.method = i == 1 ? "fallback" : "ours";
    sol.degraded = i == 1;
    rec.solutions.push_back(std::move(sol));
    ShapeReport rep;
    rep.degraded = i == 1;
    if (i == 1) {
      rep.status = Status(StatusCode::kBudgetExceeded, "budget").withShape(i);
    }
    rec.reports.push_back(std::move(rep));
  }
  return rec;
}

TEST(CellRecordTest, RoundTripsBitwise) {
  const CellRecord rec = sampleCellRecord();
  CellRecord out;
  ASSERT_TRUE(decodeCellRecord(encodeCellRecord(rec), out).ok());
  EXPECT_EQ(out.cellIndex, rec.cellIndex);
  EXPECT_EQ(out.key, rec.key);
  ASSERT_EQ(out.solutions.size(), rec.solutions.size());
  ASSERT_EQ(out.reports.size(), rec.reports.size());
  for (std::size_t i = 0; i < rec.solutions.size(); ++i) {
    EXPECT_EQ(out.solutions[i], rec.solutions[i]) << "shape " << i;
    EXPECT_EQ(out.reports[i].degraded, rec.reports[i].degraded);
    EXPECT_EQ(out.reports[i].status.code(), rec.reports[i].status.code());
    EXPECT_EQ(out.reports[i].status.message(),
              rec.reports[i].status.message());
  }
}

TEST(CellRecordTest, VersionByteDiscriminatesFromShapeRecord) {
  // The two frame kinds share one journal stream; each decoder must
  // refuse the other's frames instead of misreading them.
  ShapeRecord shape;
  shape.shapeIndex = 3;
  shape.solution.shots = {Rect(0, 0, 4, 4)};
  CellRecord cellOut;
  EXPECT_FALSE(decodeCellRecord(encodeShapeRecord(shape), cellOut).ok());

  ShapeRecord shapeOut;
  EXPECT_FALSE(
      decodeShapeRecord(encodeCellRecord(sampleCellRecord()), shapeOut).ok());
}

TEST(CellRecordTest, RejectsTruncatedAndTrailingBytes) {
  const std::string bytes = encodeCellRecord(sampleCellRecord());
  CellRecord out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        decodeCellRecord(std::string_view(bytes).substr(0, cut), out).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(decodeCellRecord(bytes + "x", out).ok());
}

TEST(CellRecordTest, RejectsOversizedKeyAndShapeCount) {
  CellRecord rec = sampleCellRecord();
  rec.key = std::string(300, 'k');  // > kMaxCellKeyBytes
  CellRecord out;
  EXPECT_FALSE(decodeCellRecord(encodeCellRecord(rec), out).ok());
}

TEST(CellRecordTest, TornTailRecoveryThroughJournal) {
  // CellRecord frames ride the CRC32 journal like ShapeRecords: a torn
  // write loses only the torn frame, every intact prefix record replays.
  TempFile journal("cell_torn");
  const std::string meta =
      cellJournalMetaFor("TOP", {std::string(64, 'a'), std::string(64, 'b')},
                         0, 2);
  std::vector<std::string> frames;
  for (int i = 0; i < 2; ++i) {
    CellRecord rec = sampleCellRecord();
    rec.cellIndex = i;
    rec.key = std::string(64, static_cast<char>('a' + i));
    frames.push_back(encodeCellRecord(rec));
  }
  {
    JournalWriter w;
    ASSERT_TRUE(w.create(journal.path(), meta, JournalFsync::kNone).ok());
    ASSERT_TRUE(w.append(frames[0]).ok());
    ASSERT_TRUE(w.append(frames[1]).ok());
    ASSERT_TRUE(w.closeChecked().ok());
  }
  // Tear the tail: drop the last 3 bytes of the second frame.
  {
    std::string bytes;
    {
      std::ifstream is(journal.path(), std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
    }
    std::ofstream os(journal.path(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
  }
  std::vector<std::string> replayed;
  JournalRecoveryStats stats;
  JournalWriter w;
  ASSERT_TRUE(w.openForAppend(journal.path(), meta, JournalFsync::kNone,
                              replayed, &stats)
                  .ok());
  EXPECT_TRUE(stats.tornTail);
  ASSERT_EQ(replayed.size(), 1u);
  CellRecord out;
  ASSERT_TRUE(decodeCellRecord(replayed[0], out).ok());
  EXPECT_EQ(out.cellIndex, 0);
  ASSERT_TRUE(w.closeChecked().ok());
}

TEST(CellJournalMetaTest, FingerprintCoversTopKeysAndRange) {
  const std::vector<std::string> keys = {std::string(64, 'a'),
                                         std::string(64, 'b')};
  const std::string base = cellJournalMetaFor("TOP", keys, 0, 2);
  EXPECT_NE(cellJournalMetaFor("OTHER", keys, 0, 2), base);
  EXPECT_NE(cellJournalMetaFor("TOP", {keys[1], keys[0]}, 0, 2), base);
  EXPECT_NE(cellJournalMetaFor("TOP", keys, 0, 1), base);
  EXPECT_EQ(cellJournalMetaFor("TOP", keys, 0, 2), base);
}

TEST(JournalMetaTest, FingerprintSeparatesRunsButNotThreadCounts) {
  const std::vector<LayoutShape> shapes = testLayout(4);
  BatchConfig config;
  const std::string base = journalMetaFor(shapes, config);

  BatchConfig eightThreads = config;
  eightThreads.threads = 8;
  EXPECT_EQ(journalMetaFor(shapes, eightThreads), base)
      << "resume with a different thread count must be allowed";

  BatchConfig otherMethod = config;
  otherMethod.method = Method::kGsc;
  EXPECT_NE(journalMetaFor(shapes, otherMethod), base);

  std::vector<LayoutShape> otherShapes = shapes;
  otherShapes[2].rings[0] = square(41, {200, 0});
  EXPECT_NE(journalMetaFor(otherShapes, config), base);
}

// --- Journaled runs ------------------------------------------------------

TEST(JournaledRunTest, MatchesPlainRunExactly) {
  const std::vector<LayoutShape> shapes = testLayout(6);
  BatchConfig config;
  config.threads = 2;
  const BatchResult plain = fractureLayoutParallel(shapes, config);

  TempFile journal("plain_match");
  JournaledRunOptions options;
  options.journalPath = journal.path();
  BatchResult journaled;
  RunCounters counters;
  ASSERT_TRUE(
      fractureLayoutJournaled(shapes, config, options, journaled, &counters)
          .ok());
  expectSameBatch(plain, journaled);
  EXPECT_EQ(counters.resumedShapes, 0);
  EXPECT_EQ(counters.freshShapes, static_cast<int>(shapes.size()));
}

TEST(JournaledRunTest, ResumeFromPartialJournalIsByteIdentical) {
  const std::vector<LayoutShape> shapes = testLayout(8);
  BatchConfig config;
  const BatchResult plain = fractureLayoutParallel(shapes, config);

  // A full journal to harvest records from.
  TempFile fullJournal("resume_full");
  {
    JournaledRunOptions options;
    options.journalPath = fullJournal.path();
    BatchResult ignored;
    ASSERT_TRUE(
        fractureLayoutJournaled(shapes, config, options, ignored).ok());
  }
  std::string meta;
  std::vector<std::string> records;
  ASSERT_TRUE(recoverJournal(fullJournal.path(), meta, records).ok());
  ASSERT_EQ(records.size(), shapes.size());

  // Resume from every prefix size, at several thread counts: the merged
  // output must equal the uninterrupted run bit for bit.
  for (const int threads : {1, 4, 8}) {
    for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                   std::size_t{7}, records.size()}) {
      TempFile partial("resume_partial");
      {
        JournalWriter writer;
        ASSERT_TRUE(
            writer.create(partial.path(), meta, JournalFsync::kNone).ok());
        for (std::size_t i = 0; i < keep; ++i) {
          ASSERT_TRUE(writer.append(records[i]).ok());
        }
      }
      BatchConfig resumedConfig = config;
      resumedConfig.threads = threads;
      JournaledRunOptions options;
      options.journalPath = partial.path();
      options.resume = true;
      BatchResult resumed;
      RunCounters counters;
      ASSERT_TRUE(fractureLayoutJournaled(shapes, resumedConfig, options,
                                          resumed, &counters)
                      .ok())
          << "threads=" << threads << " keep=" << keep;
      expectSameBatch(plain, resumed);
      EXPECT_EQ(counters.resumedShapes, static_cast<int>(keep));
      EXPECT_EQ(counters.freshShapes,
                static_cast<int>(shapes.size() - keep));
      // The journal is now complete: a second resume replays everything.
      BatchResult replayed;
      RunCounters replayCounters;
      ASSERT_TRUE(fractureLayoutJournaled(shapes, resumedConfig, options,
                                          replayed, &replayCounters)
                      .ok());
      expectSameBatch(plain, replayed);
      EXPECT_EQ(replayCounters.freshShapes, 0);
    }
  }
}

TEST(JournaledRunTest, ResumePreservesDegradedReports) {
  const std::vector<LayoutShape> shapes = testLayout(5);
  FaultInjector injector;
  injector.armShape(2, FaultKind::kThrow);
  BatchConfig config;
  config.params.faultInjector = &injector;
  const BatchResult plain = fractureLayoutParallel(shapes, config);
  ASSERT_TRUE(plain.reports[2].degraded);

  TempFile journal("degraded");
  JournaledRunOptions options;
  options.journalPath = journal.path();
  options.resume = true;
  BatchResult first;
  ASSERT_TRUE(fractureLayoutJournaled(shapes, config, options, first).ok());
  expectSameBatch(plain, first);

  // Replay: the degraded report (status code, message, shape index) must
  // come back from the journal, not be recomputed.
  BatchResult second;
  RunCounters counters;
  ASSERT_TRUE(
      fractureLayoutJournaled(shapes, config, options, second, &counters)
          .ok());
  EXPECT_EQ(counters.freshShapes, 0);
  expectSameBatch(plain, second);
  EXPECT_EQ(second.reports[2].status.code(), StatusCode::kExecFault);
  EXPECT_EQ(second.reports[2].status.shapeIndex(), 2);
}

TEST(JournaledRunTest, RefusesJournalOfDifferentRun) {
  const std::vector<LayoutShape> shapes = testLayout(3);
  BatchConfig config;
  TempFile journal("mismatch");
  JournaledRunOptions options;
  options.journalPath = journal.path();
  options.resume = true;
  BatchResult out;
  ASSERT_TRUE(fractureLayoutJournaled(shapes, config, options, out).ok());

  BatchConfig other = config;
  other.method = Method::kGsc;
  BatchResult ignored;
  const Status st = fractureLayoutJournaled(shapes, other, options, ignored);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(JournaledRunTest, RejectsOutOfRangeRecord) {
  const std::vector<LayoutShape> shapes = testLayout(3);
  BatchConfig config;
  TempFile journal("out_of_range");
  ShapeRecord rogue;
  rogue.shapeIndex = 99;
  {
    JournalWriter writer;
    ASSERT_TRUE(writer
                    .create(journal.path(), journalMetaFor(shapes, config),
                            JournalFsync::kNone)
                    .ok());
    ASSERT_TRUE(writer.append(encodeShapeRecord(rogue)).ok());
  }
  JournaledRunOptions options;
  options.journalPath = journal.path();
  options.resume = true;
  BatchResult out;
  EXPECT_FALSE(fractureLayoutJournaled(shapes, config, options, out).ok());
}

TEST(JournaledRunTest, FirstDuplicateRecordWins) {
  const std::vector<LayoutShape> shapes = testLayout(2);
  BatchConfig config;
  const BatchResult plain = fractureLayoutParallel(shapes, config);

  // Journal shape 0 twice: once genuine, once tampered. Replay must keep
  // the first (a retried worker re-journals work an earlier attempt
  // already completed; the earlier record is the canonical one).
  TempFile full("dup_src");
  JournaledRunOptions srcOptions;
  srcOptions.journalPath = full.path();
  BatchResult ignored;
  ASSERT_TRUE(fractureLayoutJournaled(shapes, config, srcOptions, ignored)
                  .ok());
  std::string meta;
  std::vector<std::string> records;
  ASSERT_TRUE(recoverJournal(full.path(), meta, records).ok());

  std::vector<std::string> ordered(records);
  // recoverJournal returns records in completion order; index them.
  std::vector<std::string> byIndex(shapes.size());
  for (const std::string& r : records) {
    ShapeRecord rec;
    ASSERT_TRUE(decodeShapeRecord(r, rec).ok());
    byIndex[static_cast<std::size_t>(rec.shapeIndex)] = r;
  }
  ShapeRecord tampered;
  ASSERT_TRUE(decodeShapeRecord(byIndex[0], tampered).ok());
  tampered.solution.shots.clear();

  TempFile dup("dup");
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.create(dup.path(), meta, JournalFsync::kNone).ok());
    ASSERT_TRUE(writer.append(byIndex[0]).ok());
    ASSERT_TRUE(writer.append(byIndex[1]).ok());
    ASSERT_TRUE(writer.append(encodeShapeRecord(tampered)).ok());
  }
  JournaledRunOptions options;
  options.journalPath = dup.path();
  options.resume = true;
  BatchResult out;
  RunCounters counters;
  ASSERT_TRUE(
      fractureLayoutJournaled(shapes, config, options, out, &counters).ok());
  expectSameBatch(plain, out);
  EXPECT_EQ(counters.freshShapes, 0);
}

// --- Sharded indexing (the tile-local index regression) ------------------

// Fracturing a layout in shards must report every failure against the
// shape's index in the ORIGINAL layout. Before shapeIndexBase, a shard
// starting at shape 4 reported its faults as shapes 0..3 — the operator
// then re-ran (or excluded) the wrong shapes.
TEST(ShardedBatchTest, ReportsCarryOriginalLayoutIndices) {
  const std::vector<LayoutShape> shapes = testLayout(6);
  FaultInjector injector;
  injector.armShape(4, FaultKind::kThrow);  // inside the second shard

  BatchConfig whole;
  whole.params.faultInjector = &injector;
  const BatchResult plain = fractureLayoutParallel(shapes, whole);
  ASSERT_TRUE(plain.reports[4].degraded);
  ASSERT_EQ(plain.reports[4].status.shapeIndex(), 4);

  // Two shards of three shapes, like a supervisor worker range or a tile.
  // The injector (like everything in FractureParams) addresses shapes by
  // original index, so the shard must translate via shapeIndexBase both
  // when consulting it and when stamping reports.
  BatchResult merged;
  for (int base = 0; base < 6; base += 3) {
    std::vector<LayoutShape> shard(shapes.begin() + base,
                                   shapes.begin() + base + 3);
    BatchConfig config = whole;
    config.shapeIndexBase = base;
    const BatchResult part = fractureLayoutParallel(shard, config);
    merged.solutions.insert(merged.solutions.end(), part.solutions.begin(),
                            part.solutions.end());
    merged.reports.insert(merged.reports.end(), part.reports.begin(),
                          part.reports.end());
  }
  mergeBatchAggregates(merged, {});

  ASSERT_EQ(merged.solutions.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    expectSameSolution(merged.solutions[static_cast<std::size_t>(i)],
                       plain.solutions[static_cast<std::size_t>(i)],
                       static_cast<std::size_t>(i));
    EXPECT_EQ(merged.reports[static_cast<std::size_t>(i)].degraded, i == 4);
  }
  // The regression: the degraded report names shape 4, not shard-local 1.
  EXPECT_EQ(merged.reports[4].status.shapeIndex(), 4);
  EXPECT_EQ(merged.degradedShapes, plain.degradedShapes);
  EXPECT_EQ(merged.totalShots, plain.totalShots);
}

TEST(MergeBatchAggregatesTest, RecomputesFromScratch) {
  BatchResult result;
  result.solutions.resize(2);
  result.solutions[0].shots = {Rect(0, 0, 1, 1)};
  result.solutions[0].failOn = 2;
  result.solutions[1].shots = {Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)};
  result.solutions[1].failOff = 1;
  result.solutions[1].runtimeSeconds = 0.5;
  result.reports.resize(2);
  result.reports[1].degraded = true;
  // Stale garbage that merge must overwrite, not accumulate into.
  result.totalShots = 999;
  result.totalFailingPixels = 999;
  result.degradedShapes = 999;
  result.shapeSecondsSum = 999.0;

  mergeBatchAggregates(result, {});
  EXPECT_EQ(result.totalShots, 3);
  EXPECT_EQ(result.totalFailingPixels, 3);
  EXPECT_EQ(result.degradedShapes, 1);
  EXPECT_DOUBLE_EQ(result.shapeSecondsSum, 0.5);
}

}  // namespace
}  // namespace mbf
