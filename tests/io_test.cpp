// Unit tests for the I/O layer: .poly / .shots round trips, SVG output
// and the ASCII table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "io/poly_io.h"
#include "io/svg.h"
#include "io/table.h"

namespace mbf {
namespace {

TEST(PolyIoTest, SinglePolygonRoundTrip) {
  const Polygon p({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  std::stringstream ss;
  const Polygon polys[] = {p};
  writePolygons(ss, polys);
  const std::vector<Polygon> back = readPolygons(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].vertices(), p.vertices());
}

TEST(PolyIoTest, MultiplePolygonsSeparatedByBlankLine) {
  const Polygon a({{0, 0}, {5, 0}, {5, 5}});
  const Polygon b({{10, 10}, {20, 10}, {20, 20}, {10, 20}});
  std::stringstream ss;
  const Polygon polys[] = {a, b};
  writePolygons(ss, polys);
  const std::vector<Polygon> back = readPolygons(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].size(), 3u);
  EXPECT_EQ(back[1].size(), 4u);
}

TEST(PolyIoTest, CommentsAndNegativesParsed) {
  std::stringstream ss("# header\n-5 -3\n10 0 # trailing\n10 10\n");
  const std::vector<Polygon> back = readPolygons(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0][0], Point(-5, -3));
}

TEST(PolyIoTest, DegenerateInputDropped) {
  std::stringstream ss("1 1\n2 2\n");  // only two vertices
  EXPECT_TRUE(readPolygons(ss).empty());
}

TEST(ShotsIoTest, RoundTrip) {
  const std::vector<Rect> shots{{0, 0, 10, 12}, {-5, 3, 7, 40}};
  std::stringstream ss;
  writeShots(ss, shots);
  EXPECT_EQ(readShots(ss), shots);
}

TEST(SvgTest, ContainsExpectedElements) {
  SvgWriter svg({0, 0, 100, 100});
  svg.addPolygon(Polygon({{0, 0}, {50, 0}, {50, 50}}), "#eee", "#333");
  svg.addRect({10, 10, 30, 30}, "red", "none");
  svg.addCircle({20.0, 20.0}, 2.0, "blue");
  svg.addText({5.0, 95.0}, "hello");
  const std::string s = svg.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("<polygon"), std::string::npos);
  EXPECT_NE(s.find("<rect"), std::string::npos);
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
}

TEST(SvgTest, TextIsXmlEscaped) {
  SvgWriter svg({0, 0, 100, 100});
  svg.addText({5.0, 95.0}, "a<b & \"c\" > 'd'");
  const std::string s = svg.str();
  EXPECT_NE(s.find("a&lt;b &amp; &quot;c&quot; &gt; &apos;d&apos;"),
            std::string::npos);
  // No raw entity characters between the text tags.
  const std::size_t open = s.find("<text");
  const std::size_t close = s.find("</text>");
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  const std::string body = s.substr(s.find('>', open) + 1,
                                    close - s.find('>', open) - 1);
  EXPECT_EQ(body.find('<'), std::string::npos);
  EXPECT_EQ(body.find('"'), std::string::npos);
}

TEST(XmlEscapeTest, FiveEntities) {
  EXPECT_EQ(xmlEscape("&<>\"'"), "&amp;&lt;&gt;&quot;&apos;");
  EXPECT_EQ(xmlEscape("plain text 123"), "plain text 123");
  EXPECT_EQ(xmlEscape(""), "");
}

TEST(SvgTest, YAxisFlipped) {
  SvgWriter svg({0, 0, 100, 100}, 1.0);
  svg.addCircle({0.0, 0.0}, 1.0, "black");  // world bottom-left
  const std::string s = svg.str();
  // Bottom-left maps to SVG y = height = 100.
  EXPECT_NE(s.find("cy=\"100\""), std::string::npos);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "count"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("| 12345 |"), std::string::npos);
  EXPECT_NE(s.find("+-------+"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  t.addSeparator();
  t.addRow({"3", "4"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::int64_t{42}), "42");
  EXPECT_EQ(Table::fmt(0.5, 1), "0.5");
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.addRow({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace mbf
