// Unit tests for shot corner point extraction (paper section 3 / fig. 1)
// and the shot compatibility graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fracture/corner_extraction.h"
#include "fracture/shot_graph.h"

namespace mbf {
namespace {

Polygon square(int size) {
  return Polygon({{0, 0}, {size, 0}, {size, size}, {0, size}});
}

int countType(const std::vector<CornerPoint>& pts, CornerType t) {
  return static_cast<int>(
      std::count_if(pts.begin(), pts.end(),
                    [t](const CornerPoint& p) { return p.type == t; }));
}

TEST(CornerExtractionTest, SquareYieldsOnePointPerCorner) {
  Problem p(square(60), FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  EXPECT_EQ(ex.simplifiedRing().size(), 4u);
  // Each edge contributes 2 raw points; clustering merges per corner.
  EXPECT_EQ(ex.raw.size(), 8u);
  EXPECT_EQ(ex.corners.size(), 4u);
  EXPECT_EQ(countType(ex.corners, CornerType::kBottomLeft), 1);
  EXPECT_EQ(countType(ex.corners, CornerType::kBottomRight), 1);
  EXPECT_EQ(countType(ex.corners, CornerType::kTopLeft), 1);
  EXPECT_EQ(countType(ex.corners, CornerType::kTopRight), 1);
}

TEST(CornerExtractionTest, CornerPointsOvershootTheCorner) {
  Problem p(square(60), FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  for (const CornerPoint& c : ex.corners) {
    // Clustered corner points sit diagonally outside their target corner
    // (rounding compensation).
    switch (c.type) {
      case CornerType::kBottomLeft:
        EXPECT_LT(c.pos.x, 0.0);
        EXPECT_LT(c.pos.y, 0.0);
        break;
      case CornerType::kTopRight:
        EXPECT_GT(c.pos.x, 60.0);
        EXPECT_GT(c.pos.y, 60.0);
        break;
      case CornerType::kBottomRight:
        EXPECT_GT(c.pos.x, 60.0);
        EXPECT_LT(c.pos.y, 0.0);
        break;
      case CornerType::kTopLeft:
        EXPECT_LT(c.pos.x, 0.0);
        EXPECT_GT(c.pos.y, 60.0);
        break;
    }
  }
}

TEST(CornerExtractionTest, DiagonalSegmentSpawnsSpacedPoints) {
  // A wide right triangle hypotenuse produces diagonal corner points.
  Polygon tri({{0, 0}, {120, 0}, {120, 60}});
  Problem p(tri, FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  // The hypotenuse runs up-right with interior below-right; its points
  // are top-left type, spaced ~Lth.
  const int nTl = countType(ex.raw, CornerType::kTopLeft);
  const double hypo = std::hypot(120.0, 60.0);
  EXPECT_NEAR(nTl, std::lround(hypo / p.lth()), 1);
  // All TL points lie above-left of the hypotenuse (outside).
  for (const CornerPoint& c : ex.raw) {
    if (c.type != CornerType::kTopLeft) continue;
    EXPECT_GT(c.pos.y, c.pos.x * 0.5 - 1e-9);
  }
}

TEST(CornerExtractionTest, ShortSegmentsSkipped) {
  // A tiny nick shorter than Lth must not spawn corner points of its own:
  // total corners equal those of the enclosing square.
  Polygon nicked({{0, 0},
                  {30, 0},
                  {30, 3},
                  {33, 3},
                  {33, 0},
                  {60, 0},
                  {60, 60},
                  {0, 60}});
  FractureParams params;
  params.gamma = 0.5;  // keep RDP from erasing the nick before traversal
  Problem p(nicked, params);
  const CornerExtraction ex = extractCornerPoints(p);
  for (const CornerPoint& c : ex.raw) {
    // No raw point may come from inside the nick (3 <= x <= 33 near y=0
    // at the *top* of the nick, y ~ 3 + shift); bottom-edge points at
    // y ~ -shift are fine.
    EXPECT_FALSE(c.pos.y > 1.0 && c.pos.y < 8.0 && c.pos.x > 2.0 &&
                 c.pos.x < 34.0)
        << c.pos.x << "," << c.pos.y << " " << toString(c.type);
  }
}

TEST(ClusterTest, MergesOnlySameType) {
  std::vector<CornerPoint> pts{
      {{0.0, 0.0}, CornerType::kBottomLeft},
      {{1.0, 0.0}, CornerType::kBottomLeft},
      {{0.5, 0.5}, CornerType::kTopRight},
  };
  const std::vector<CornerPoint> out = clusterCornerPoints(pts, 5.0);
  EXPECT_EQ(out.size(), 2u);
}

TEST(ClusterTest, ChainsMergeTransitively) {
  std::vector<CornerPoint> pts{
      {{0.0, 0.0}, CornerType::kBottomLeft},
      {{4.0, 0.0}, CornerType::kBottomLeft},
      {{8.0, 0.0}, CornerType::kBottomLeft},
  };
  const std::vector<CornerPoint> out = clusterCornerPoints(pts, 5.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].pos.x, 4.0, 1e-9);
}

TEST(ClusterTest, FarPointsStaySeparate) {
  std::vector<CornerPoint> pts{
      {{0.0, 0.0}, CornerType::kBottomLeft},
      {{100.0, 0.0}, CornerType::kBottomLeft},
  };
  EXPECT_EQ(clusterCornerPoints(pts, 5.0).size(), 2u);
}

TEST(TestShotTest, DiagonalPairUnique) {
  const CornerPoint bl{{0.0, 0.0}, CornerType::kBottomLeft};
  const CornerPoint tr{{30.0, 20.0}, CornerType::kTopRight};
  const std::optional<Rect> shot = testShot(bl, tr, 12);
  ASSERT_TRUE(shot.has_value());
  EXPECT_EQ(*shot, Rect(0, 0, 30, 20));
}

TEST(TestShotTest, InvertedDiagonalRejected) {
  const CornerPoint bl{{30.0, 20.0}, CornerType::kBottomLeft};
  const CornerPoint tr{{0.0, 0.0}, CornerType::kTopRight};
  EXPECT_FALSE(testShot(bl, tr, 12).has_value());
}

TEST(TestShotTest, SameTypeRejected) {
  const CornerPoint a{{0.0, 0.0}, CornerType::kBottomLeft};
  const CornerPoint b{{30.0, 20.0}, CornerType::kBottomLeft};
  EXPECT_FALSE(testShot(a, b, 12).has_value());
}

TEST(TestShotTest, LeftEdgePairGetsMinWidth) {
  const CornerPoint bl{{0.0, 0.0}, CornerType::kBottomLeft};
  const CornerPoint tl{{0.0, 40.0}, CornerType::kTopLeft};
  const std::optional<Rect> shot = testShot(bl, tl, 12);
  ASSERT_TRUE(shot.has_value());
  EXPECT_EQ(*shot, Rect(0, 0, 12, 40));
}

TEST(TestShotTest, TopEdgePairGrowsDownward) {
  const CornerPoint tl{{0.0, 40.0}, CornerType::kTopLeft};
  const CornerPoint tr{{50.0, 40.0}, CornerType::kTopRight};
  const std::optional<Rect> shot = testShot(tl, tr, 12);
  ASSERT_TRUE(shot.has_value());
  EXPECT_EQ(*shot, Rect(0, 28, 50, 40));
}

TEST(TestShotTest, MinSizeRejected) {
  const CornerPoint bl{{0.0, 0.0}, CornerType::kBottomLeft};
  const CornerPoint tr{{8.0, 30.0}, CornerType::kTopRight};
  EXPECT_FALSE(testShot(bl, tr, 12).has_value());  // width 8 < 12
}

TEST(ShotGraphTest, SquareCornersFormClique) {
  Problem p(square(60), FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  ASSERT_EQ(ex.corners.size(), 4u);
  const Graph g = buildShotGraph(p, ex.corners);
  // All four corners of a square are mutually compatible.
  EXPECT_EQ(g.numEdges(), 6);
}

TEST(ShotGraphTest, OverlapTestRejectsOutsideShots) {
  // Two separate lobes connected by a thin bridge: a BL point on the left
  // lobe and a TR on the right lobe imply a huge shot mostly outside.
  Polygon dumbbell({{0, 0},    {40, 0},  {40, 18}, {80, 18}, {80, 0},
                    {120, 0},  {120, 40}, {80, 40}, {80, 22}, {40, 22},
                    {40, 40},  {0, 40}});
  Problem p(dumbbell, FractureParams{});
  const CornerExtraction ex = extractCornerPoints(p);
  const Graph g = buildShotGraph(p, ex.corners);
  // Find BL of the left lobe and TR of the right lobe.
  int bl = -1;
  int tr = -1;
  for (std::size_t i = 0; i < ex.corners.size(); ++i) {
    const CornerPoint& c = ex.corners[i];
    if (c.type == CornerType::kBottomLeft && c.pos.x < 5.0 && c.pos.y < 5.0) {
      bl = static_cast<int>(i);
    }
    if (c.type == CornerType::kTopRight && c.pos.x > 115.0 &&
        c.pos.y > 35.0) {
      tr = static_cast<int>(i);
    }
  }
  ASSERT_GE(bl, 0);
  ASSERT_GE(tr, 0);
  // The implied 120x40 shot covers the notch region (outside), so the
  // 80 % overlap admission must reject the edge.
  EXPECT_FALSE(g.hasEdge(bl, tr));
}

}  // namespace
}  // namespace mbf
