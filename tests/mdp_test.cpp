// Tests for the mask-data-prep layer: ring grouping, method dispatch and
// multi-threaded batch fracturing.
#include <gtest/gtest.h>

#include "benchgen/ilt_synth.h"
#include "mdp/layout.h"

namespace mbf {
namespace {

Polygon square(int size, Point at = {0, 0}) {
  return Polygon({{at.x, at.y},
                  {at.x + size, at.y},
                  {at.x + size, at.y + size},
                  {at.x, at.y + size}});
}

TEST(GroupRingsTest, SeparateShapesStaySeparate) {
  const std::vector<LayoutShape> shapes =
      groupRings({square(40), square(40, {100, 0})});
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].rings.size(), 1u);
  EXPECT_EQ(shapes[1].rings.size(), 1u);
}

TEST(GroupRingsTest, NestedRingBecomesHole) {
  const std::vector<LayoutShape> shapes =
      groupRings({square(100), square(30, {30, 30})});
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].rings.size(), 2u);
  // Outer ring first.
  EXPECT_EQ(shapes[0].rings[0].bbox(), Rect(0, 0, 100, 100));
}

TEST(GroupRingsTest, MixedLayout) {
  const std::vector<LayoutShape> shapes = groupRings(
      {square(30, {200, 200}), square(100), square(30, {35, 35})});
  ASSERT_EQ(shapes.size(), 2u);
  int holed = 0;
  for (const LayoutShape& s : shapes) {
    if (s.rings.size() == 2) ++holed;
  }
  EXPECT_EQ(holed, 1);
}

TEST(GroupRingsTest, EmptyInput) {
  EXPECT_TRUE(groupRings({}).empty());
}

TEST(MethodTest, ParseAndToStringRoundTrip) {
  for (const Method m :
       {Method::kOurs, Method::kGsc, Method::kMp, Method::kProxy}) {
    Method parsed;
    ASSERT_TRUE(parseMethod(toString(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  Method dummy;
  EXPECT_FALSE(parseMethod("ilp", dummy));
  EXPECT_FALSE(parseMethod("", dummy));
}

TEST(MethodTest, DispatchProducesMethodTag) {
  LayoutShape shape;
  shape.rings.push_back(square(40));
  const FractureParams params;
  EXPECT_EQ(fractureShape(shape, params, Method::kOurs).method, "ours");
  EXPECT_EQ(fractureShape(shape, params, Method::kGsc).method, "GSC");
  EXPECT_EQ(fractureShape(shape, params, Method::kProxy).method,
            "EDA-PROXY");
}

TEST(BatchTest, TotalsAggregate) {
  std::vector<LayoutShape> shapes;
  for (int i = 0; i < 3; ++i) {
    LayoutShape s;
    s.rings.push_back(square(40, {i * 100, 0}));
    shapes.push_back(s);
  }
  BatchConfig config;
  const BatchResult result = fractureLayout(shapes, config);
  ASSERT_EQ(result.solutions.size(), 3u);
  int shots = 0;
  for (const Solution& sol : result.solutions) shots += sol.shotCount();
  EXPECT_EQ(result.totalShots, shots);
  EXPECT_EQ(result.totalShots, 3);  // one shot per isolated square
  EXPECT_EQ(result.totalFailingPixels, 0);
}

TEST(BatchTest, ThreadCountDoesNotChangeResults) {
  std::vector<LayoutShape> shapes;
  for (int i = 0; i < 4; ++i) {
    LayoutShape s;
    IltSynthConfig cfg;
    cfg.seed = 300 + unsigned(i);
    s.rings.push_back(makeIltShape(cfg));
    shapes.push_back(s);
  }
  BatchConfig one;
  one.threads = 1;
  BatchConfig four;
  four.threads = 4;
  const BatchResult a = fractureLayout(shapes, one);
  const BatchResult b = fractureLayout(shapes, four);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].shots, b.solutions[i].shots) << i;
  }
  EXPECT_EQ(a.totalShots, b.totalShots);
}

TEST(BatchTest, MethodSelectionAffectsAllShapes) {
  std::vector<LayoutShape> shapes(2);
  shapes[0].rings.push_back(square(50));
  shapes[1].rings.push_back(square(50, {100, 100}));
  BatchConfig config;
  config.method = Method::kGsc;
  const BatchResult result = fractureLayout(shapes, config);
  for (const Solution& sol : result.solutions) {
    EXPECT_EQ(sol.method, "GSC");
  }
}

}  // namespace
}  // namespace mbf
