// mbf_cli -- command-line mask fracturing driver.
//
//   mbf_cli <input.poly> <output.shots> [options]
//   mbf_cli --verify <run-dir-or-manifest.json> [--threads=n]
//
//   --method=ours|gsc|mp|proxy   fracturing method        (default ours)
//   --gamma=<nm>                 CD tolerance             (default 2)
//   --sigma=<nm>                 proximity kernel sigma   (default 6.25)
//   --lmin=<nm>                  minimum shot side        (default 12)
//   --eta=<0..1>                 backscatter mixture      (default 0)
//   --sigma-back=<nm>            backscatter sigma        (default sigma)
//   --threads=<n>                worker threads; 0 = all cores (default 1)
//   --budget-ms=<ms>             per-shape time budget; 0 = none (default 0)
//   --nmax=<n>                   max refinement iterations  (default 1500)
//   --strict                     fail shapes instead of degrading them
//   --order                      order shots for the writer (NN + 2-opt)
//   --svg=<path>                 write an overlay SVG of shapes + shots
//   --gds-out=<path>             also write shots as GDSII rectangles
//   --report                     print per-shape statistics
//
// Telemetry (DESIGN.md section 15):
//   --metrics-json=<path>        write the run manifest: one JSON
//                                document aggregating batch totals,
//                                refiner stage timers, perf counters,
//                                recovery counters, per-shape outcomes,
//                                shot-quality stats and the config
//                                fingerprint
//   --trace-json=<path>          record trace spans (fracture stages,
//                                parallelFor chunks, journal writes,
//                                worker lifecycles) and write a
//                                chrome://tracing / Perfetto JSON
//                                timeline; under --isolate the worker
//                                subprocesses' spans are merged in
//
// Crash recovery (DESIGN.md section 14):
//   --journal=<path>             append each completed shape to a
//                                CRC32-framed result journal
//   --resume                     replay the journal first; fracture only
//                                the missing shapes (byte-identical
//                                output to an uninterrupted run)
//   --fsync=none|each            journal durability (default none:
//                                survives process death; each: survives
//                                power loss)
//   --isolate                    supervised multi-process mode: shapes
//                                are sharded across mbf_cli worker
//                                subprocesses; crashes/hangs cost one
//                                degraded shape, never the run
//   --jobs=<n>                   worker processes for --isolate
//   --worker-timeout-ms=<ms>     watchdog: SIGKILL workers that exceed
//                                this wall clock (0 = none)
//   --retries=<n>                relaunches of a failing worker range
//                                before bisection (default 2)
//   --backoff-ms=<ms>            base of the capped exponential retry
//                                backoff (default 50)
//
// Fault injection (deterministic, for the crash drills):
//   --inject=<kind>@<i>[,...]    arm <kind> (throw|oom|timeout|crash|
//                                hang) on shape index i
//   --inject-every=<kind>@<n>    arm <kind> on every nth shape
//   --inject-seed=<s>            seed for the injector
//
// Hierarchical production path (DESIGN.md sections 17 and 19):
//   --hier                       fracture the .gds hierarchically: each
//                                unique cell is fractured once and its
//                                shot list instantiated at every
//                                SREF/AREF placement (requires a .gds
//                                input). Composes with --journal/
//                                --resume (cell-level CellRecord frames:
//                                a resumed run replays completed cells
//                                and fractures only the missing ones)
//                                and with --isolate (unique cells are
//                                sharded across worker processes; the
//                                parent instantiates)
//   --cell-cache=<dir>           persistent content-addressed cell
//                                cache: cells keyed by SHA-256 over
//                                geometry + fracture parameters are
//                                reused across runs; a warm run
//                                fractures only misses
//   --cell-cache-quota-mb=<n>    soft size cap on the cell cache:
//                                after each store, least-recently-
//                                modified entries are evicted until
//                                the cache fits, never evicting an
//                                entry this run touched
//   --top-cell=<name>            top structure (default: the unique
//                                structure no SREF/AREF references);
//                                also applies to flat .gds runs, whose
//                                flatten starts at the same root
//
// Output integrity (DESIGN.md section 16):
//   --verify <target>            acceptance gate: re-hash every artifact
//                                a finished run's manifest lists and
//                                re-check every per-shape claim with the
//                                independent dense checker; exit 0 clean,
//                                6 on any discrepancy
//   --selfcheck                  audit the .shots bytes in-process right
//                                after writing them; shapes that fail
//                                are re-fractured once through the
//                                fallback ladder and tagged "repaired"
//                                in the manifest (exit 6 if one still
//                                fails). The .shots output is
//                                byte-identical with or without this
//                                flag.
// All artifacts are written atomically (temp + fsync + rename) and the
// manifest records each one's SHA-256; the manifest itself gets a
// `.sha256` sidecar. SIGTERM/SIGINT drain gracefully: started shapes
// finish and are journaled, the manifest is stamped "interrupted", and
// the run exits 5.
//
// Hidden worker plumbing (spawned by --isolate, not for direct use):
//   --worker --shape-range=a:b   fracture only shapes [a, b), reporting
//                                original layout indices
//   --cell-range=a:b             hierarchical worker: fracture only plan
//                                cells [a, b) and journal CellRecords;
//                                requires --worker --hier --journal
//   --degrade-only               fallback-only re-fracture of a
//                                crash-isolated culprit shape
//   --trace-raw=<path>           record trace spans and dump them as a
//                                raw span file for the supervisor to
//                                merge (instead of chrome JSON)
//
// Input: flat .poly ring list (blank-line separated) or a .gds file
// (BOUNDARY elements); rings nested in another ring are holes. Output:
// one "x0 y0 x1 y1" shot per line, with '#' comments separating shapes.
//
// Exit codes:
//   0  every shape fractured by the primary method, Eq. 4 feasible
//   1  completed, but some shapes degraded to rect-partition fracturing
//   2  usage / bad argument, or an auxiliary output (--svg, --gds-out,
//      --metrics-json, --trace-json) could not be written, or a journal
//      append failed mid-batch and the run completed unjournaled (the
//      .shots artifact is intact; the journal artifact was dropped)
//   3  input or output I/O error (unreadable, unparseable, empty input),
//      or a fatal journal/supervisor error
//   4  completed without degradation but with failing pixels — or, with
//      --strict, any per-shape failure
//   5  partial success: completed, but one or more shapes crashed their
//      worker and were crash-isolated (bisected to the culprit and
//      degraded via the fallback ladder) — or the run was interrupted
//      (SIGTERM/SIGINT) and drained gracefully — or a supervised run
//      aborted early (a worker hit ENOSPC every future worker would hit
//      too; the manifest names the cause in recovery.abort_cause)
//   6  integrity failure: --verify found a hash/claim discrepancy, or a
//      --selfcheck shape still failed its audit after repair
#include <sys/stat.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/shot_stats.h"
#include "audit/independent_checker.h"
#include "audit/verify_run.h"
#include "io/atomic_file.h"
#include "io/gdsii.h"
#include "io/poly_io.h"
#include "io/svg.h"
#include "io/table.h"
#include "mdp/checkpoint.h"
#include "mdp/hierarchy.h"
#include "mdp/layout.h"
#include "mdp/ordering.h"
#include "mdp/supervisor.h"
#include "support/fault_injector.h"
#include "support/interrupt.h"
#include "support/perf_counters.h"
#include "support/telemetry.h"

namespace {

bool parseDouble(const std::string& value, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

bool parseInt(const std::string& value, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

int usage() {
  std::cerr << "usage: mbf_cli <input.poly> <output.shots> "
               "[--method=ours|gsc|mp|proxy] [--gamma=nm] [--sigma=nm] "
               "[--lmin=nm] [--eta=0..1] [--threads=n] [--budget-ms=ms] "
               "[--nmax=n] [--strict] [--svg=path] [--report] "
               "[--metrics-json=path] [--trace-json=path] "
               "[--journal=path] [--resume] [--fsync=none|each] "
               "[--isolate] [--jobs=n] [--worker-timeout-ms=ms] "
               "[--retries=n] [--backoff-ms=ms] [--selfcheck] "
               "[--hier] [--cell-cache=dir] [--cell-cache-quota-mb=n] "
               "[--top-cell=name] "
               "[--inject=kind@i,...] [--inject-every=kind@n]\n"
               "       mbf_cli --verify <run-dir-or-manifest.json> "
               "[--threads=n]\n";
  return 2;
}

/// The `mbf_cli --verify <target>` acceptance gate. Exit 0 only when
/// every artifact re-hashes to its manifest entry AND every per-shape
/// claim survives the independent checker; 6 on any discrepancy
/// (including "could not even start"), 2 on usage errors.
int runVerifyMode(int argc, char** argv) {
  mbf::VerifyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      if (i + 1 >= argc) {
        std::cerr << "--verify needs a run directory or manifest path\n";
        return usage();
      }
      options.target = argv[++i];
    } else if (arg.rfind("--verify=", 0) == 0) {
      options.target = arg.substr(std::string("--verify=").size());
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parseInt(arg.substr(std::string("--threads=").size()),
                    options.threads) ||
          options.threads < 0) {
        std::cerr << "invalid --threads: must be an integer >= 0\n";
        return usage();
      }
    } else {
      std::cerr << "unknown argument in --verify mode: " << arg << "\n";
      return usage();
    }
  }
  if (options.target.empty()) {
    std::cerr << "--verify needs a run directory or manifest path\n";
    return usage();
  }

  mbf::VerifyReport report;
  const mbf::Status st = mbf::verifyRun(options, report);
  if (!st.ok()) {
    std::cerr << "verify: " << st.str() << "\n";
    return 6;
  }
  if (!report.clean()) {
    std::cerr << report.str();
    std::cerr << "verify: FAILED (" << report.fileIssues.size()
              << " artifact issue(s), " << report.audit.findings.size()
              << " shape finding(s)) for " << report.manifestPath << "\n";
    return 6;
  }
  std::cout << "verify: OK — " << report.artifactsChecked
            << " artifact(s) hashed, " << report.audit.shapesAudited
            << " shape(s) re-checked, 0 discrepancies"
            << (report.interrupted ? " (interrupted run: partial by design)"
                                   : "")
            << " [" << report.manifestPath << "]\n";
  return 0;
}

/// "kind@number" -> (FaultKind, int). Used by --inject / --inject-every.
bool parseKindAt(const std::string& spec, mbf::FaultKind& kind, int& at) {
  const std::size_t sep = spec.find('@');
  if (sep == std::string::npos) return false;
  if (!mbf::parseFaultKind(spec.substr(0, sep), kind)) return false;
  return parseInt(spec.substr(sep + 1), at);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbf;

  if (argc >= 2 && (std::string(argv[1]) == "--verify" ||
                    std::string(argv[1]).rfind("--verify=", 0) == 0)) {
    return runVerifyMode(argc, argv);
  }

  if (argc < 3) return usage();
  const std::string inputPath = argv[1];
  const std::string outputPath = argv[2];

  BatchConfig config;
  std::string svgPath;
  std::string gdsOutPath;
  std::string metricsJsonPath;
  std::string traceJsonPath;
  std::string traceRawPath;
  bool report = false;
  bool orderForWriter = false;
  bool selfcheck = false;

  // Hierarchical production path (DESIGN.md section 17).
  bool hier = false;
  std::string cellCacheDir;
  int cellCacheQuotaMb = 0;
  std::string topCell;

  // Crash-recovery mode flags.
  std::string journalPath;
  bool resume = false;
  JournalFsync fsyncPolicy = JournalFsync::kNone;
  bool isolate = false;
  bool workerMode = false;
  int rangeBegin = -1;
  int rangeEnd = -1;
  int cellRangeBegin = -1;
  int cellRangeEnd = -1;
  int jobs = 2;
  double workerTimeoutMs = 0.0;
  int retries = 2;
  double backoffMs = 50.0;

  // Deterministic fault injection (lives as long as the batch does).
  FaultInjector injector;
  bool injectorArmed = false;

  // Flags a supervisor forwards verbatim to its workers: everything
  // that changes the computed result (plus injection, so an injected
  // crash actually fires inside the worker process).
  std::vector<std::string> forwardArgs;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string{} : arg.substr(eq + 1);
    // Each flag reports its own constraint so a rejected value explains
    // itself instead of the generic "bad argument".
    std::string error;
    bool forward = false;
    if (key == "--method") {
      if (!parseMethod(value, config.method)) {
        error = "must be ours, gsc, mp or proxy";
      }
      forward = true;
    } else if (key == "--gamma") {
      if (!parseDouble(value, config.params.gamma) ||
          config.params.gamma < 0.0) {
        error = "must be a number >= 0 (nm)";
      }
      forward = true;
    } else if (key == "--sigma") {
      if (!parseDouble(value, config.params.sigma) ||
          config.params.sigma <= 0.0) {
        error = "must be a number > 0 (nm)";
      }
      forward = true;
    } else if (key == "--lmin") {
      if (!parseInt(value, config.params.lmin) || config.params.lmin < 1) {
        error = "must be an integer >= 1 (nm)";
      }
      forward = true;
    } else if (key == "--eta") {
      if (!parseDouble(value, config.params.backscatterEta) ||
          config.params.backscatterEta < 0.0 ||
          config.params.backscatterEta > 1.0) {
        error = "must be a number in [0, 1]";
      }
      forward = true;
    } else if (key == "--sigma-back") {
      if (!parseDouble(value, config.params.backscatterSigma) ||
          config.params.backscatterSigma <= 0.0) {
        error = "must be a number > 0 (nm)";
      }
      forward = true;
    } else if (key == "--budget-ms") {
      if (!parseDouble(value, config.params.shapeTimeBudgetMs) ||
          config.params.shapeTimeBudgetMs < 0.0) {
        error = "must be a number >= 0 (milliseconds, 0 = unlimited)";
      }
      forward = true;
    } else if (key == "--nmax") {
      if (!parseInt(value, config.params.nmax) || config.params.nmax < 0) {
        error = "must be an integer >= 0";
      }
      forward = true;
    } else if (key == "--strict") {
      config.allowDegradation = false;
      forward = true;
    } else if (key == "--order") {
      orderForWriter = true;
    } else if (key == "--selfcheck") {
      selfcheck = true;
    } else if (key == "--hier") {
      hier = true;
    } else if (key == "--cell-cache") {
      cellCacheDir = value;
      if (cellCacheDir.empty()) error = "must be a directory path";
    } else if (key == "--cell-cache-quota-mb") {
      if (!parseInt(value, cellCacheQuotaMb) || cellCacheQuotaMb < 1) {
        error = "must be an integer >= 1 (megabytes)";
      }
    } else if (key == "--top-cell") {
      topCell = value;
      if (topCell.empty()) error = "must be a structure name";
    } else if (key == "--gds-out") {
      gdsOutPath = value;
      if (gdsOutPath.empty()) error = "must be a path";
    } else if (key == "--threads") {
      // 0 = hardware concurrency; the knob drives both the per-shape job
      // parallelism and the in-problem scan parallelism.
      if (!parseInt(value, config.threads) || config.threads < 0) {
        error = "must be an integer >= 0 (0 = all cores)";
      } else {
        config.params.numThreads = config.threads;
      }
    } else if (key == "--svg") {
      svgPath = value;
      if (svgPath.empty()) error = "must be a path";
    } else if (key == "--report") {
      report = true;
    } else if (key == "--metrics-json") {
      metricsJsonPath = value;
      if (metricsJsonPath.empty()) error = "must be a path";
    } else if (key == "--trace-json") {
      traceJsonPath = value;
      if (traceJsonPath.empty()) error = "must be a path";
    } else if (key == "--trace-raw") {
      traceRawPath = value;
      if (traceRawPath.empty()) error = "must be a path";
    } else if (key == "--journal") {
      journalPath = value;
      if (journalPath.empty()) error = "must be a path";
    } else if (key == "--resume") {
      resume = true;
    } else if (key == "--fsync") {
      if (value == "none") {
        fsyncPolicy = JournalFsync::kNone;
      } else if (value == "each") {
        fsyncPolicy = JournalFsync::kEachRecord;
      } else {
        error = "must be none or each";
      }
    } else if (key == "--isolate") {
      isolate = true;
    } else if (key == "--jobs") {
      if (!parseInt(value, jobs) || jobs < 1) {
        error = "must be an integer >= 1";
      }
    } else if (key == "--worker-timeout-ms") {
      if (!parseDouble(value, workerTimeoutMs) || workerTimeoutMs < 0.0) {
        error = "must be a number >= 0 (milliseconds, 0 = no watchdog)";
      }
    } else if (key == "--retries") {
      if (!parseInt(value, retries) || retries < 0) {
        error = "must be an integer >= 0";
      }
    } else if (key == "--backoff-ms") {
      if (!parseDouble(value, backoffMs) || backoffMs < 0.0) {
        error = "must be a number >= 0 (milliseconds)";
      }
    } else if (key == "--worker") {
      workerMode = true;
    } else if (key == "--shape-range") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos ||
          !parseInt(value.substr(0, colon), rangeBegin) ||
          !parseInt(value.substr(colon + 1), rangeEnd) || rangeBegin < 0 ||
          rangeEnd < rangeBegin) {
        error = "must be begin:end with 0 <= begin <= end";
      }
    } else if (key == "--cell-range") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos ||
          !parseInt(value.substr(0, colon), cellRangeBegin) ||
          !parseInt(value.substr(colon + 1), cellRangeEnd) ||
          cellRangeBegin < 0 || cellRangeEnd < cellRangeBegin) {
        error = "must be begin:end with 0 <= begin <= end";
      }
    } else if (key == "--degrade-only") {
      config.fallbackOnly = true;
    } else if (key == "--inject") {
      std::string rest = value;
      while (!rest.empty() && error.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string spec = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string{}
                                          : rest.substr(comma + 1);
        FaultKind kind = FaultKind::kNone;
        int at = -1;
        if (!parseKindAt(spec, kind, at) || at < 0) {
          error = "must be kind@index[,kind@index...] with kind in "
                  "throw|oom|timeout|crash|hang";
        } else {
          injector.armShape(at, kind);
          injectorArmed = true;
        }
      }
      if (value.empty()) error = "must be kind@index[,kind@index...]";
      forward = true;
    } else if (key == "--inject-every") {
      FaultKind kind = FaultKind::kNone;
      int n = 0;
      if (!parseKindAt(value, kind, n) || n < 1) {
        error = "must be kind@n with n >= 1";
      } else {
        injector.armEveryNth(n, kind);
        injectorArmed = true;
      }
      forward = true;
    } else if (key == "--inject-seed") {
      int seed = 0;
      if (!parseInt(value, seed)) {
        error = "must be an integer";
      } else {
        injector = FaultInjector(static_cast<std::uint64_t>(seed));
        injectorArmed = false;  // re-arm flags must follow the seed
      }
      forward = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage();
    }
    if (!error.empty()) {
      std::cerr << "invalid " << key << "='" << value << "': " << error
                << "\n";
      return usage();
    }
    if (forward) forwardArgs.push_back(arg);
  }
  if (resume && journalPath.empty()) {
    std::cerr << "--resume requires --journal=<path>\n";
    return usage();
  }
  if (isolate && workerMode) {
    std::cerr << "--isolate and --worker are mutually exclusive\n";
    return usage();
  }
  if ((rangeBegin >= 0 || cellRangeBegin >= 0 || config.fallbackOnly) &&
      !workerMode) {
    std::cerr << "--shape-range/--cell-range/--degrade-only are worker-mode "
                 "plumbing (spawned by --isolate)\n";
    return usage();
  }
  const bool gdsInput = inputPath.size() > 4 &&
                        inputPath.substr(inputPath.size() - 4) == ".gds";
  if (hier && !gdsInput) {
    std::cerr << "--hier requires a .gds input (hierarchy lives in the "
                 "GDS structure tree)\n";
    return usage();
  }
  if (!hier && !cellCacheDir.empty()) {
    std::cerr << "--cell-cache requires --hier\n";
    return usage();
  }
  if (cellCacheQuotaMb > 0 && cellCacheDir.empty()) {
    std::cerr << "--cell-cache-quota-mb requires --cell-cache=<dir>\n";
    return usage();
  }
  if (!gdsInput && !topCell.empty()) {
    std::cerr << "--top-cell requires a .gds input\n";
    return usage();
  }
  // Hierarchical crash-safety plumbing (DESIGN.md section 19): the unit
  // of sharding and journaling under --hier is the PLAN CELL, so the
  // flat --shape-range never composes with it, and a hierarchical
  // worker's journal IS the product its supervisor harvests.
  if (hier && rangeBegin >= 0) {
    std::cerr << "--shape-range does not compose with --hier (workers "
                 "shard plan cells via --cell-range)\n";
    return usage();
  }
  if (cellRangeBegin >= 0 && !hier) {
    std::cerr << "--cell-range requires --hier\n";
    return usage();
  }
  if (workerMode && hier &&
      (cellRangeBegin < 0 || journalPath.empty())) {
    std::cerr << "a hierarchical worker needs --cell-range=a:b and "
                 "--journal=<path> (spawned by --hier --isolate)\n";
    return usage();
  }
  if (injectorArmed) config.params.faultInjector = &injector;

  const auto dirOf = [](const std::string& p) {
    const std::size_t slash = p.find_last_of('/');
    return slash == std::string::npos ? std::string(".") : p.substr(0, slash);
  };

  // Advisory liveness locks (DESIGN.md section 19): while held, a
  // concurrent run's stale-temp sweep proves this process LIVE and
  // leaves its in-flight `.tmp.<pid>` files alone, even after pid
  // reuse. Best effort — on an unlockable filesystem concurrent sweeps
  // fall back to the conservative kill(pid, 0) probe.
  DirLivenessLock outputDirLock;
  DirLivenessLock journalDirLock;
  (void)outputDirLock.acquire(dirOf(outputPath));
  if (!journalPath.empty() && dirOf(journalPath) != dirOf(outputPath)) {
    (void)journalDirLock.acquire(dirOf(journalPath));
  }

  // --resume cleanup: an earlier writer of the output or journal may
  // have died inside atomicWriteFile, leaving `<name>.tmp.<pid>`
  // orphans. Sweep the ones whose writer is provably dead so retries of
  // a failing run do not accumulate temps (DESIGN.md section 18).
  int sweptTemps = 0;
  if (resume) {
    const std::string outDir = dirOf(outputPath);
    const std::string jrnDir = dirOf(journalPath);
    sweptTemps = sweepStaleTempFiles(outDir);
    if (jrnDir != outDir) sweptTemps += sweepStaleTempFiles(jrnDir);
    if (sweptTemps > 0) {
      std::cerr << "resume: removed " << sweptTemps
                << " stale temp file(s) left by dead writers\n";
    }
  }

  // Graceful drain: SIGTERM/SIGINT set a flag that fractureShapeGuarded
  // checks on entry, so started shapes finish (and are journaled) while
  // unstarted ones stay untouched for a later --resume; the supervisor
  // additionally forwards the signal to its workers. The run then exits
  // 5 with the manifest stamped "interrupted".
  installInterruptHandlers();

  // Tracing on before any traced work starts. Spans never change what is
  // computed, so the output stays byte-identical either way.
  if (!traceJsonPath.empty() || !traceRawPath.empty()) {
    TraceRecorder::instance().enable();
  }

  std::vector<Polygon> rings;
  GdsLibrary gdsLib;
  if (gdsInput) {
    const Status st = parseGdsFile(inputPath, gdsLib);
    if (!st.ok()) {
      std::cerr << "cannot parse GDSII " << inputPath << ": " << st.str()
                << "\n";
      return 3;
    }
    if (!hier) {
      // Checked flatten: a cycle, depth overflow or out-of-range
      // placement is a hard input error, never silently fewer shots.
      std::vector<GdsPolygon> flat;
      const Status fs = flattenGdsChecked(gdsLib, topCell, flat);
      if (!fs.ok()) {
        std::cerr << "cannot flatten GDSII " << inputPath << ": " << fs.str()
                  << "\n";
        return 3;
      }
      for (GdsPolygon& gp : flat) {
        rings.push_back(std::move(gp.polygon));
      }
    }
  } else {
    PolyReadStats stats;
    const Status st = parsePolygonsFile(inputPath, rings, &stats);
    if (!st.ok()) {
      if (rings.empty()) {
        std::cerr << "cannot parse " << inputPath << ": " << st.str() << "\n";
        return 3;
      }
      // Line-tolerant parse: some polygons survived, report and go on.
      std::cerr << "warning: " << inputPath << ": " << st.str() << " ("
                << stats.badLines << " bad line(s), " << stats.skippedRings
                << " skipped ring(s))\n";
    }
  }
  if (!hier && rings.empty()) {
    std::cerr << "no polygons in " << inputPath << "\n";
    return 3;
  }
  std::vector<LayoutShape> shapes = groupRings(std::move(rings));

  // Worker mode: fracture only [rangeBegin, rangeEnd), reporting
  // original layout indices; the journal is the product the supervisor
  // harvests (the .shots scratch file exists only for uniformity).
  if (workerMode && rangeBegin >= 0) {
    if (rangeEnd > static_cast<int>(shapes.size())) {
      std::cerr << "--shape-range end " << rangeEnd << " exceeds the "
                << shapes.size() << " shapes in " << inputPath << "\n";
      return 2;
    }
    config.shapeIndexBase = rangeBegin;
    shapes = std::vector<LayoutShape>(
        shapes.begin() + rangeBegin, shapes.begin() + rangeEnd);
  }
  if (!hier) {
    std::cerr << "fracturing " << shapes.size() << " shape(s) with method '"
              << toString(config.method) << "'...\n";
  }

  BatchResult result;
  RunCounters counters;
  bool haveCounters = false;
  std::vector<int> isolatedShapes;
  std::string abortCause;
  RunManifestInfo::HierInfo hierInfo;
  // Record the flatten/expansion root even for flat .gds runs, so
  // --verify re-derives the layout from the same structure (an explicit
  // --top-cell may disambiguate roots the auto-detection would refuse).
  hierInfo.topCell = topCell;

  if (hier) {
    HierOptions hierOptions;
    hierOptions.topStruct = topCell;
    hierOptions.cellCacheDir = cellCacheDir;
    hierOptions.cellCacheQuotaBytes =
        static_cast<std::int64_t>(cellCacheQuotaMb) * 1024 * 1024;
    hierOptions.journalPath = journalPath;
    hierOptions.resume = resume;
    hierOptions.fsync = fsyncPolicy;
    HierarchicalResult hierResult;
    std::vector<int> isolatedCells;
    if (workerMode) {
      // Hierarchical worker: fracture only plan cells [a, b), journaling
      // one CellRecord per finished cell. The journal IS the product the
      // supervisor harvests, so any journal failure is fatal here —
      // workers never downgrade.
      hierOptions.cellBegin = cellRangeBegin;
      hierOptions.cellEnd = cellRangeEnd;
      const Status st = fractureGdsHierarchical(gdsLib, config, hierOptions,
                                                hierResult, &counters);
      if (!st.ok()) {
        std::cerr << "hier worker: " << st.str() << "\n";
        return 3;
      }
      haveCounters = true;
    } else if (isolate) {
      // Supervised hierarchical mode: unique cells are sharded across
      // worker processes; this parent plans, replays its own journal,
      // harvests worker CellRecords, instantiates and hole-fills.
      SupervisorConfig sup;
      sup.cliPath = selfExePath(argv[0]);
      sup.inputPath = inputPath;
      sup.workDir = outputPath + ".workers";
      sup.workerArgs = forwardArgs;
      sup.jobs = jobs;
      sup.workerTimeoutMs = workerTimeoutMs;
      sup.maxRetries = retries;
      sup.backoffBaseMs = backoffMs;
      sup.verbose = report;
      sup.collectTraceSpans = !traceJsonPath.empty();
      bool hierInterrupted = false;
      const Status st = fractureGdsHierarchicalSupervised(
          gdsLib, config, hierOptions, sup, hierResult, counters,
          hierInterrupted, abortCause, isolatedCells);
      if (!st.ok()) {
        std::cerr << "hier supervisor: " << st.str() << "\n";
        return 3;
      }
      haveCounters = true;
      if (!abortCause.empty()) {
        std::cerr << "supervisor: run aborted: " << abortCause << "\n";
      }
      if (counters.journalDowngraded) {
        std::cerr << "journal: append failed mid-run; completing "
                     "unjournaled (the harvested results are intact)\n";
      }
      if (!isolatedCells.empty()) {
        std::cerr << "hier: crash-isolated plan cell(s):";
        for (const int c : isolatedCells) std::cerr << " " << c;
        std::cerr << "\n";
      }
      for (TraceSpan& span : hierResult.workerSpans) {
        TraceRecorder::instance().addForeign(std::move(span));
      }
    } else {
      const Status st = fractureGdsHierarchical(gdsLib, config, hierOptions,
                                                hierResult, &counters);
      if (!st.ok()) {
        if (!journalPath.empty() && counters.journalDowngraded) {
          // Degrade-don't-die: the run completed in memory; ship the
          // shots, drop the (unsealed) journal artifact, exit 2 via the
          // ladder below — same contract as the flat journaled driver.
          std::cerr << "journal: append failed mid-run; completing "
                       "unjournaled: " << st.str() << "\n";
        } else {
          std::cerr << "hier: " << st.str() << "\n";
          return 3;
        }
      }
      if (!journalPath.empty()) haveCounters = true;
    }
    shapes = std::move(hierResult.instanceShapes);
    result = std::move(hierResult.batch);
    if (haveCounters) counters.staleTempsRemoved += sweptTemps;
    hierInfo.enabled = true;
    hierInfo.topCell = hierResult.topStruct;
    hierInfo.cacheDir = cellCacheDir;
    hierInfo.reachableCells = hierResult.reachableCells;
    hierInfo.uniqueCellsFractured = hierResult.uniqueCellsFractured;
    hierInfo.uniqueShapesFractured = hierResult.uniqueShapesFractured;
    hierInfo.cacheHits = hierResult.cellCacheHits;
    hierInfo.cacheMisses = hierResult.cellCacheMisses;
    hierInfo.cacheRejected = hierResult.cellCacheRejected;
    hierInfo.instancesExpanded = hierResult.instancesExpanded;
    hierInfo.cacheIoErrors = hierResult.cellCacheIoErrors;
    hierInfo.cacheEvicted = hierResult.cellCacheEvicted;
    hierInfo.cacheEvictionsSkippedLive =
        hierResult.cellCacheEvictionsSkippedLive;
    hierInfo.cacheDisabled = hierResult.cellCacheDisabled;
    if (hierResult.cellCacheDisabled) {
      // Degrade-don't-die: the cache is an accelerator, never a
      // correctness dependency; a sick cache filesystem costs speed on
      // the NEXT run, not this run's shots.
      std::cerr << "cell-cache: disabled for the rest of the run after "
                << hierResult.cellCacheIoErrors << " I/O error(s): "
                << hierResult.cellCacheDisableCause << "\n";
    }
    std::cerr << "hier: top '" << hierResult.topStruct << "', "
              << hierResult.reachableCells << " reachable cell(s), "
              << hierResult.cellCacheHits << " cache hit(s), "
              << hierResult.uniqueCellsFractured << " fractured, "
              << hierResult.instancesExpanded << " instance(s), "
              << shapes.size() << " instantiated shape(s)\n";
  } else if (isolate) {
    // Supervised multi-process mode: this process never fractures; it
    // shards, watches, retries, bisects, and merges worker journals.
    SupervisorConfig sup;
    sup.cliPath = selfExePath(argv[0]);
    sup.inputPath = inputPath;
    sup.workDir = outputPath + ".workers";
    sup.workerArgs = forwardArgs;
    sup.numShapes = static_cast<int>(shapes.size());
    sup.jobs = jobs;
    sup.workerTimeoutMs = workerTimeoutMs;
    sup.maxRetries = retries;
    sup.backoffBaseMs = backoffMs;
    sup.verbose = report;
    sup.collectTraceSpans = !traceJsonPath.empty();
    SupervisorResult supResult = superviseFracture(sup);
    if (!supResult.status.ok()) {
      std::cerr << "supervisor: " << supResult.status.str() << "\n";
      return 3;
    }
    if (!supResult.abortCause.empty()) {
      // ENOSPC-style abort: every unjournaled shape carries a degraded
      // record naming the cause; the harvested prefix still ships, the
      // run exits 5 and the manifest is stamped "aborted".
      std::cerr << "supervisor: run aborted: " << supResult.abortCause
                << "\n";
      abortCause = supResult.abortCause;
    }
    for (TraceSpan& span : supResult.workerSpans) {
      TraceRecorder::instance().addForeign(std::move(span));
    }
    result.solutions.resize(shapes.size());
    result.reports.resize(shapes.size());
    for (auto& [index, record] : supResult.records) {
      result.solutions[static_cast<std::size_t>(index)] =
          std::move(record.solution);
      result.reports[static_cast<std::size_t>(index)] =
          std::move(record.report);
    }
    mergeBatchAggregates(result, {});
    counters = supResult.counters;
    haveCounters = true;
    isolatedShapes = supResult.isolatedShapes;
  } else if (!journalPath.empty()) {
    JournaledRunOptions options;
    options.journalPath = journalPath;
    options.resume = resume;
    options.fsync = fsyncPolicy;
    const Status st =
        fractureLayoutJournaled(shapes, config, options, result, &counters);
    counters.staleTempsRemoved += sweptTemps;
    if (!st.ok()) {
      if (counters.journalDowngraded && !workerMode) {
        // Degrade-don't-die: the batch completed in memory; ship the
        // shots and drop the (unsealed) journal artifact. The exit
        // ladder reports 2 — an artifact the run was asked for is
        // missing — not 3. Workers stay strict: their journal IS the
        // product the supervisor harvests.
        std::cerr << "journal: append failed mid-batch; completing "
                     "unjournaled: " << st.str() << "\n";
      } else {
        std::cerr << "journal: " << st.str() << "\n";
        return 3;
      }
    }
    haveCounters = true;
  } else {
    result = fractureLayout(shapes, config);
  }

  if (orderForWriter) {
    for (Solution& sol : result.solutions) {
      sol.shots = applyOrder(sol.shots, orderShots(sol.shots));
    }
  }

  const bool interrupted = result.interruptedShapes > 0;

  // Emit .shots atomically, keeping the hash for the manifest. The bytes
  // are identical with --selfcheck on or off: the audit reads back what
  // was written and never touches a passing run's output.
  std::string shotsSha256;
  std::vector<int> repairedShapes;
  bool selfcheckFailed = false;
  auto writeShotsFile = [&]() -> bool {
    std::ostringstream shotsOs;
    writeBatchShots(shotsOs, result.solutions);
    const Status st = atomicWriteFile(outputPath, shotsOs.str(), &shotsSha256);
    if (!st.ok()) {
      std::cerr << "cannot write " << outputPath << ": " << st.str() << "\n";
      return false;
    }
    return true;
  };
  if (!writeShotsFile()) return 3;

  if (selfcheck) {
    // In-process audit of the artifact just written, through the same
    // independent checker --verify uses — reading the file back, so a
    // write-path defect is caught too, not just a compute-path one.
    auto auditOnce = [&]() {
      AuditReport audit;
      std::string content;
      const Status rd = readFileToString(outputPath, content);
      if (!rd.ok()) {
        audit.findings.push_back({-1, rd.str()});
        return audit;
      }
      std::vector<ShotSection> sections;
      const Status ps = parseShotSections(content, sections);
      if (!ps.ok()) {
        audit.findings.push_back({-1, ps.str()});
        return audit;
      }
      std::vector<ShapeExpectation> expectations(result.solutions.size());
      for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        const Solution& sol = result.solutions[i];
        const ShapeReport& rep = result.reports[i];
        expectations[i] = {sol.method,
                           sol.failOn,
                           sol.failOff,
                           sol.cost,
                           rep.degraded,
                           (rep.status.ok() || rep.degraded) &&
                               !rep.interrupted,
                           !orderForWriter};
      }
      return auditShotSections(shapes, config.params, sections, expectations,
                               config.threads, config.shapeIndexBase);
    };

    AuditReport audit = auditOnce();
    if (audit.clean()) {
      std::cerr << "selfcheck: " << audit.shapesAudited
                << " shape(s) audited, 0 findings\n";
    } else {
      std::cerr << "selfcheck: " << audit.findings.size()
                << " finding(s):\n" << audit.str();
      // Repair ladder: each failing shape is re-fractured once, fallback
      // only (deterministic and budget-free), tagged "repaired" in the
      // manifest, and the artifact is rewritten and re-audited. A shape
      // still failing after that is an integrity failure (exit 6).
      std::vector<int> failing;
      for (const AuditFinding& f : audit.findings) {
        const int local = f.shapeIndex - config.shapeIndexBase;
        if (f.shapeIndex < 0 || local < 0 ||
            static_cast<std::size_t>(local) >= shapes.size()) {
          selfcheckFailed = true;  // file-level finding: nothing to repair
          continue;
        }
        if (std::find(failing.begin(), failing.end(), local) ==
            failing.end()) {
          failing.push_back(local);
        }
      }
      for (const int local : failing) {
        const auto s = static_cast<std::size_t>(local);
        ShapeOutcome outcome = fractureShapeGuarded(
            shapes[s], config.params, config.method,
            config.shapeIndexBase + local, /*allowDegradation=*/true,
            nullptr, /*fallbackOnly=*/true);
        result.solutions[s] = std::move(outcome.solution);
        result.reports[s] = {std::move(outcome.status), outcome.degraded,
                             outcome.interrupted};
        repairedShapes.push_back(config.shapeIndexBase + local);
      }
      if (!failing.empty()) {
        // Totals follow the repaired solutions; the refiner stage
        // counters describe the original attempts and stay as recorded.
        const RefinerStats savedStats = result.refinerStats;
        mergeBatchAggregates(result, {});
        result.refinerStats = savedStats;
        if (!writeShotsFile()) return 3;
        AuditReport reaudit = auditOnce();
        if (reaudit.clean()) {
          std::cerr << "selfcheck: repaired " << failing.size()
                    << " shape(s); audit now clean\n";
        } else {
          std::cerr << "selfcheck: still failing after repair:\n"
                    << reaudit.str();
          selfcheckFailed = true;
        }
      }
    }
  }

  if (report) {
    Table table({"shape", "rings", "shots", "fail px", "s", "status"});
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const Solution& sol = result.solutions[i];
      const ShapeReport& rep = result.reports[i];
      std::string status = rep.degraded ? "degraded" : "ok";
      if (!rep.status.ok()) {
        status += " (" + std::string(toString(rep.status.code())) + ")";
      }
      table.addRow({std::to_string(config.shapeIndexBase +
                                   static_cast<int>(i)),
                    Table::fmt(std::int64_t(shapes[i].rings.size())),
                    Table::fmt(sol.shotCount()),
                    Table::fmt(sol.failingPixels()),
                    Table::fmt(sol.runtimeSeconds, 2), status});
    }
    table.print(std::cout);
    std::cout << "perf: " << summarize(result.refinerStats.perf) << "\n";
    if (result.degradedShapes > 0) {
      std::cout << "degraded shapes (" << result.degradedShapes << "):\n";
      for (std::size_t i = 0; i < result.reports.size(); ++i) {
        if (result.reports[i].degraded) {
          std::cout << "  shape "
                    << (config.shapeIndexBase + static_cast<int>(i)) << ": "
                    << result.reports[i].status.str() << "\n";
        }
      }
    }
    if (!isolatedShapes.empty()) {
      std::cout << "crash-isolated shapes (" << isolatedShapes.size()
                << "):";
      for (const int s : isolatedShapes) std::cout << " " << s;
      std::cout << "\n";
    }
  }

  // Auxiliary outputs (--svg, --gds-out, --metrics-json, --trace-json):
  // each failure is diagnosed and the run exits 2 — a run must never
  // print success while silently dropping an artifact it was asked for.
  bool auxWriteFailed = false;

  // Every artifact this run writes is recorded (path, bytes, SHA-256) in
  // the manifest, which is therefore written LAST; --verify re-hashes
  // them all. The .shots entry uses the write-time hash — the digest of
  // the bytes handed to the atomic writer, not a re-read.
  std::vector<ArtifactEntry> artifacts;
  auto addArtifact = [&](const std::string& kind, const std::string& path,
                         const std::string& knownHex) {
    ArtifactEntry entry;
    entry.kind = kind;
    entry.path = path;
    struct stat st {};
    if (::stat(path.c_str(), &st) == 0) {
      entry.bytes = static_cast<std::int64_t>(st.st_size);
    }
    entry.sha256 = knownHex;
    if (entry.sha256.empty()) sha256File(path, entry.sha256);
    artifacts.push_back(std::move(entry));
  };
  addArtifact("shots", outputPath, shotsSha256);
  if (!journalPath.empty() && !counters.journalDowngraded) {
    addArtifact("journal", journalPath, "");
  }

  if (!svgPath.empty()) {
    Rect view;
    for (const LayoutShape& s : shapes) {
      view = view.unionWith(s.rings.front().bbox());
    }
    SvgWriter svg(view.inflated(20));
    for (const LayoutShape& s : shapes) {
      for (const Polygon& ring : s.rings) {
        svg.addPolygon(ring, "#cfe3f7", "#1b5ea6", 0.3, 0.8);
      }
    }
    for (const Solution& sol : result.solutions) {
      for (const Rect& shot : sol.shots) {
        svg.addRect(shot, "#2ca02c", "#145214", 0.2, 0.2);
      }
    }
    const Status st = svg.save(svgPath);
    if (!st.ok()) {
      std::cerr << "cannot write SVG " << svgPath << ": " << st.str() << "\n";
      auxWriteFailed = true;
    } else {
      addArtifact("svg", svgPath, "");
    }
  }

  if (!gdsOutPath.empty()) {
    GdsLibrary outLib;
    GdsStructure top;
    top.name = "SHOTS";
    for (const Solution& sol : result.solutions) {
      for (const Rect& shot : sol.shots) {
        GdsPolygon gp;
        gp.polygon = Polygon({{shot.x0, shot.y0},
                              {shot.x1, shot.y0},
                              {shot.x1, shot.y1},
                              {shot.x0, shot.y1}});
        gp.layer = 100;
        top.polygons.push_back(std::move(gp));
      }
    }
    outLib.structures = {std::move(top)};
    if (!saveGds(gdsOutPath, outLib)) {
      std::cerr << "cannot write GDSII " << gdsOutPath << "\n";
      auxWriteFailed = true;
    } else {
      addArtifact("gds", gdsOutPath, "");
    }
  }

  // Worker span dump first (supervised runs), chrome JSON second: a
  // worker never gets --trace-json, a parent never gets --trace-raw.
  // Both precede the manifest so it can record their hashes.
  if (!traceRawPath.empty()) {
    const Status st =
        writeSpanFile(traceRawPath, TraceRecorder::instance().snapshot());
    if (!st.ok()) {
      std::cerr << st.str() << "\n";
      auxWriteFailed = true;
    }
  }
  if (!traceJsonPath.empty()) {
    const Status st =
        writeTraceJson(traceJsonPath, TraceRecorder::instance().snapshot());
    if (!st.ok()) {
      std::cerr << st.str() << "\n";
      auxWriteFailed = true;
    } else {
      addArtifact("trace", traceJsonPath, "");
    }
  }

  if (!metricsJsonPath.empty()) {
    std::vector<Rect> allShots;
    for (const Solution& sol : result.solutions) {
      allShots.insert(allShots.end(), sol.shots.begin(), sol.shots.end());
    }
    RunManifestInfo info;
    info.inputPath = inputPath;
    info.outputPath = outputPath;
    info.fingerprint = journalMetaFor(shapes, config);
    info.haveRecovery = haveCounters;
    info.isolatedShapes = isolatedShapes;
    info.artifacts = artifacts;
    info.interrupted = interrupted;
    info.abortCause = abortCause;
    info.repairedShapes = repairedShapes;
    info.ordered = orderForWriter;
    info.hier = hierInfo;
    const std::string manifest = buildRunManifest(
        info, config, result, counters, computeShotStats(allShots));
    std::string manifestHex;
    Status ms = atomicWriteFile(metricsJsonPath, manifest, &manifestHex);
    if (ms.ok()) ms = writeHashSidecar(metricsJsonPath, manifestHex);
    if (!ms.ok()) {
      std::cerr << "cannot write metrics JSON " << metricsJsonPath << ": "
                << ms.str() << "\n";
      auxWriteFailed = true;
    }
  }

  std::cout << "total: " << result.totalShots << " shots, "
            << result.totalFailingPixels << " failing px, "
            << result.degradedShapes << " degraded shape(s), "
            << (interrupted
                    ? std::to_string(result.interruptedShapes) +
                          " interrupted shape(s), "
                    : std::string{})
            << Table::fmt(result.wallSeconds, 2) << " s wall / "
            << Table::fmt(result.shapeSecondsSum, 2) << " s shape-sum ("
            << config.threads << " thread(s))\n";
  if (haveCounters) {
    std::cout << "recovery: " << counters.resumedShapes << " resumed, "
              << counters.freshShapes << " fresh"
              << (hierInfo.enabled
                      ? " (" + std::to_string(counters.resumedCells) +
                            " resumed / " +
                            std::to_string(counters.freshCells) +
                            " fresh cell(s))"
                      : std::string{})
              << (counters.tornTail ? " (torn tail truncated)" : "")
              << ", " << counters.retriedRanges << " retried range(s), "
              << counters.bisectedRanges << " bisected, "
              << counters.crashedWorkers << " crashed worker(s) ("
              << counters.hungWorkers << " hung), " << counters.crashedShapes
              << " crash-isolated shape(s)"
              << (counters.staleTempsRemoved > 0
                      ? ", " + std::to_string(counters.staleTempsRemoved) +
                            " stale temp(s) swept"
                      : std::string{})
              << (counters.journalDowngraded ? " [journal downgraded]"
                                             : "")
              << "\n";
  }

  // A missing requested artifact outranks the quality ladder: the run
  // did not deliver what it printed it would.
  if (auxWriteFailed) return 2;
  // An artifact that failed its own audit even after repair outranks
  // everything below: the output cannot be trusted.
  if (selfcheckFailed) return 6;
  // The journal artifact was dropped mid-batch (degrade-don't-die):
  // the shots are good, but an artifact the run was asked for is
  // missing — same rank as a failed auxiliary output.
  if (counters.journalDowngraded) return 2;
  // Graceful drain: the run is partial by design; the manifest says
  // "interrupted" and a --resume finishes it.
  if (interrupted) return 5;
  // Supervised abort (e.g. ENOSPC): partial by design, like an
  // interrupt, with the cause named in the manifest.
  if (!abortCause.empty()) return 5;

  if (!config.allowDegradation) {
    // Strict mode: a shape that would have degraded is a failure.
    for (const ShapeReport& rep : result.reports) {
      if (!rep.status.ok()) {
        std::cerr << "strict: " << rep.status.str() << "\n";
        return 4;
      }
    }
    return result.totalFailingPixels == 0 ? 0 : 4;
  }
  // Crash-isolated shapes are more severe than an in-process
  // degradation: their primary result is unknowable, not just
  // infeasible. The partial-success code outranks plain degradation.
  if (haveCounters && counters.crashedShapes > 0) return 5;
  if (result.degradedShapes > 0) return 1;
  return result.totalFailingPixels == 0 ? 0 : 4;
}
