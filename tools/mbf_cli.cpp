// mbf_cli -- command-line mask fracturing driver.
//
//   mbf_cli <input.poly> <output.shots> [options]
//
//   --method=ours|gsc|mp|proxy   fracturing method        (default ours)
//   --gamma=<nm>                 CD tolerance             (default 2)
//   --sigma=<nm>                 proximity kernel sigma   (default 6.25)
//   --lmin=<nm>                  minimum shot side        (default 12)
//   --eta=<0..1>                 backscatter mixture      (default 0)
//   --sigma-back=<nm>            backscatter sigma        (default sigma)
//   --threads=<n>                worker threads; 0 = all cores (default 1)
//   --budget-ms=<ms>             per-shape time budget; 0 = none (default 0)
//   --nmax=<n>                   max refinement iterations  (default 1500)
//   --strict                     fail shapes instead of degrading them
//   --order                      order shots for the writer (NN + 2-opt)
//   --svg=<path>                 write an overlay SVG of shapes + shots
//   --gds-out=<path>             also write shots as GDSII rectangles
//   --report                     print per-shape statistics
//
// Input: flat .poly ring list (blank-line separated) or a .gds file
// (BOUNDARY elements); rings nested in another ring are holes. Output:
// one "x0 y0 x1 y1" shot per line, with '#' comments separating shapes.
//
// Exit codes:
//   0  every shape fractured by the primary method, Eq. 4 feasible
//   1  completed, but some shapes degraded to rect-partition fracturing
//   2  usage / bad argument
//   3  input or output I/O error (unreadable, unparseable, empty input)
//   4  completed without degradation but with failing pixels — or, with
//      --strict, any per-shape failure
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "io/gdsii.h"
#include "io/poly_io.h"
#include "io/svg.h"
#include "io/table.h"
#include "mdp/layout.h"
#include "mdp/ordering.h"
#include "support/perf_counters.h"

namespace {

bool parseDouble(const std::string& value, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

bool parseInt(const std::string& value, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

int usage() {
  std::cerr << "usage: mbf_cli <input.poly> <output.shots> "
               "[--method=ours|gsc|mp|proxy] [--gamma=nm] [--sigma=nm] "
               "[--lmin=nm] [--eta=0..1] [--threads=n] [--budget-ms=ms] "
               "[--nmax=n] [--strict] [--svg=path] [--report]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbf;

  if (argc < 3) return usage();
  const std::string inputPath = argv[1];
  const std::string outputPath = argv[2];

  BatchConfig config;
  std::string svgPath;
  std::string gdsOutPath;
  bool report = false;
  bool orderForWriter = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string{} : arg.substr(eq + 1);
    // Each flag reports its own constraint so a rejected value explains
    // itself instead of the generic "bad argument".
    std::string error;
    if (key == "--method") {
      if (!parseMethod(value, config.method)) {
        error = "must be ours, gsc, mp or proxy";
      }
    } else if (key == "--gamma") {
      if (!parseDouble(value, config.params.gamma) ||
          config.params.gamma < 0.0) {
        error = "must be a number >= 0 (nm)";
      }
    } else if (key == "--sigma") {
      if (!parseDouble(value, config.params.sigma) ||
          config.params.sigma <= 0.0) {
        error = "must be a number > 0 (nm)";
      }
    } else if (key == "--lmin") {
      if (!parseInt(value, config.params.lmin) || config.params.lmin < 1) {
        error = "must be an integer >= 1 (nm)";
      }
    } else if (key == "--eta") {
      if (!parseDouble(value, config.params.backscatterEta) ||
          config.params.backscatterEta < 0.0 ||
          config.params.backscatterEta > 1.0) {
        error = "must be a number in [0, 1]";
      }
    } else if (key == "--sigma-back") {
      if (!parseDouble(value, config.params.backscatterSigma) ||
          config.params.backscatterSigma <= 0.0) {
        error = "must be a number > 0 (nm)";
      }
    } else if (key == "--budget-ms") {
      if (!parseDouble(value, config.params.shapeTimeBudgetMs) ||
          config.params.shapeTimeBudgetMs < 0.0) {
        error = "must be a number >= 0 (milliseconds, 0 = unlimited)";
      }
    } else if (key == "--nmax") {
      if (!parseInt(value, config.params.nmax) || config.params.nmax < 0) {
        error = "must be an integer >= 0";
      }
    } else if (key == "--strict") {
      config.allowDegradation = false;
    } else if (key == "--order") {
      orderForWriter = true;
    } else if (key == "--gds-out") {
      gdsOutPath = value;
      if (gdsOutPath.empty()) error = "must be a path";
    } else if (key == "--threads") {
      // 0 = hardware concurrency; the knob drives both the per-shape job
      // parallelism and the in-problem scan parallelism.
      if (!parseInt(value, config.threads) || config.threads < 0) {
        error = "must be an integer >= 0 (0 = all cores)";
      } else {
        config.params.numThreads = config.threads;
      }
    } else if (key == "--svg") {
      svgPath = value;
      if (svgPath.empty()) error = "must be a path";
    } else if (key == "--report") {
      report = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage();
    }
    if (!error.empty()) {
      std::cerr << "invalid " << key << "='" << value << "': " << error
                << "\n";
      return usage();
    }
  }

  std::vector<Polygon> rings;
  if (inputPath.size() > 4 &&
      inputPath.substr(inputPath.size() - 4) == ".gds") {
    GdsLibrary lib;
    const Status st = parseGdsFile(inputPath, lib);
    if (!st.ok()) {
      std::cerr << "cannot parse GDSII " << inputPath << ": " << st.str()
                << "\n";
      return 3;
    }
    for (GdsPolygon& gp : flattenGds(lib)) {
      rings.push_back(std::move(gp.polygon));
    }
  } else {
    PolyReadStats stats;
    const Status st = parsePolygonsFile(inputPath, rings, &stats);
    if (!st.ok()) {
      if (rings.empty()) {
        std::cerr << "cannot parse " << inputPath << ": " << st.str() << "\n";
        return 3;
      }
      // Line-tolerant parse: some polygons survived, report and go on.
      std::cerr << "warning: " << inputPath << ": " << st.str() << " ("
                << stats.badLines << " bad line(s), " << stats.skippedRings
                << " skipped ring(s))\n";
    }
  }
  if (rings.empty()) {
    std::cerr << "no polygons in " << inputPath << "\n";
    return 3;
  }
  const std::vector<LayoutShape> shapes = groupRings(std::move(rings));
  std::cerr << "fracturing " << shapes.size() << " shape(s) with method '"
            << toString(config.method) << "'...\n";

  BatchResult result = fractureLayout(shapes, config);
  if (orderForWriter) {
    for (Solution& sol : result.solutions) {
      sol.shots = applyOrder(sol.shots, orderShots(sol.shots));
    }
  }

  std::ofstream os(outputPath);
  if (!os) {
    std::cerr << "cannot write " << outputPath << "\n";
    return 3;
  }
  for (std::size_t i = 0; i < result.solutions.size(); ++i) {
    os << "# shape " << i << ": " << result.solutions[i].shotCount()
       << " shots, " << result.solutions[i].failingPixels()
       << " failing px" << (result.solutions[i].degraded ? ", degraded" : "")
       << "\n";
    writeShots(os, result.solutions[i].shots);
  }

  if (report) {
    Table table({"shape", "rings", "shots", "fail px", "s", "status"});
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const Solution& sol = result.solutions[i];
      const ShapeReport& rep = result.reports[i];
      std::string status = rep.degraded ? "degraded" : "ok";
      if (!rep.status.ok()) {
        status += " (" + std::string(toString(rep.status.code())) + ")";
      }
      table.addRow({std::to_string(i),
                    Table::fmt(std::int64_t(shapes[i].rings.size())),
                    Table::fmt(sol.shotCount()),
                    Table::fmt(sol.failingPixels()),
                    Table::fmt(sol.runtimeSeconds, 2), status});
    }
    table.print(std::cout);
    std::cout << "perf: " << summarize(result.refinerStats.perf) << "\n";
    if (result.degradedShapes > 0) {
      std::cout << "degraded shapes (" << result.degradedShapes << "):\n";
      for (std::size_t i = 0; i < result.reports.size(); ++i) {
        if (result.reports[i].degraded) {
          std::cout << "  shape " << i << ": " << result.reports[i].status.str()
                    << "\n";
        }
      }
    }
  }

  if (!svgPath.empty()) {
    Rect view;
    for (const LayoutShape& s : shapes) {
      view = view.unionWith(s.rings.front().bbox());
    }
    SvgWriter svg(view.inflated(20));
    for (const LayoutShape& s : shapes) {
      for (const Polygon& ring : s.rings) {
        svg.addPolygon(ring, "#cfe3f7", "#1b5ea6", 0.3, 0.8);
      }
    }
    for (const Solution& sol : result.solutions) {
      for (const Rect& shot : sol.shots) {
        svg.addRect(shot, "#2ca02c", "#145214", 0.2, 0.2);
      }
    }
    svg.save(svgPath);
  }

  if (!gdsOutPath.empty()) {
    GdsLibrary outLib;
    GdsStructure top;
    top.name = "SHOTS";
    for (const Solution& sol : result.solutions) {
      for (const Rect& shot : sol.shots) {
        GdsPolygon gp;
        gp.polygon = Polygon({{shot.x0, shot.y0},
                              {shot.x1, shot.y0},
                              {shot.x1, shot.y1},
                              {shot.x0, shot.y1}});
        gp.layer = 100;
        top.polygons.push_back(std::move(gp));
      }
    }
    outLib.structures = {std::move(top)};
    saveGds(gdsOutPath, outLib);
  }

  std::cout << "total: " << result.totalShots << " shots, "
            << result.totalFailingPixels << " failing px, "
            << result.degradedShapes << " degraded shape(s), "
            << Table::fmt(result.wallSeconds, 2) << " s wall / "
            << Table::fmt(result.shapeSecondsSum, 2) << " s shape-sum ("
            << config.threads << " thread(s))\n";

  if (!config.allowDegradation) {
    // Strict mode: a shape that would have degraded is a failure.
    for (const ShapeReport& rep : result.reports) {
      if (!rep.status.ok()) {
        std::cerr << "strict: " << rep.status.str() << "\n";
        return 4;
      }
    }
    return result.totalFailingPixels == 0 ? 0 : 4;
  }
  if (result.degradedShapes > 0) return 1;
  return result.totalFailingPixels == 0 ? 0 : 4;
}
